"""The on-disk write-trace format.

A :class:`WriteTrace` is a finite sequence of logical write addresses
(optionally with 64-bit payloads) over a declared user address space.
Traces serialize to compressed ``.npz`` with a format-version tag so
future layouts stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

import numpy as np

from repro.util.validation import require_positive_int

#: Current trace file format version.
FORMAT_VERSION: int = 1


@dataclass(frozen=True)
class WriteTrace:
    """A recorded write stream.

    Attributes
    ----------
    addresses:
        1-D int64 array of logical line addresses, in ``[0, user_lines)``.
    user_lines:
        Size of the logical address space the trace was recorded against.
    data:
        Optional uint64 payload array aligned with ``addresses``.
    source:
        Free-form provenance label (e.g. the generating attack's
        ``describe()``).
    """

    addresses: np.ndarray
    user_lines: int
    data: Optional[np.ndarray] = None
    source: str = "unknown"

    def __post_init__(self) -> None:
        addresses = np.asarray(self.addresses, dtype=np.int64)
        object.__setattr__(self, "addresses", addresses)
        require_positive_int(self.user_lines, "user_lines")
        if addresses.ndim != 1 or addresses.size == 0:
            raise ValueError("addresses must be a non-empty 1-D array")
        if addresses.min() < 0 or addresses.max() >= self.user_lines:
            raise ValueError(
                f"addresses must lie in [0, {self.user_lines}); "
                f"found range [{addresses.min()}, {addresses.max()}]"
            )
        if self.data is not None:
            data = np.asarray(self.data, dtype=np.uint64)
            if data.shape != addresses.shape:
                raise ValueError(
                    f"data shape {data.shape} does not match addresses "
                    f"shape {addresses.shape}"
                )
            object.__setattr__(self, "data", data)
        addresses.setflags(write=False)

    def __len__(self) -> int:
        return int(self.addresses.size)

    @property
    def has_data(self) -> bool:
        """Whether the trace carries payloads."""
        return self.data is not None

    def histogram(self) -> np.ndarray:
        """Writes per logical line over the whole trace."""
        return np.bincount(self.addresses, minlength=self.user_lines).astype(float)

    def slice(self, start: int, stop: int) -> "WriteTrace":
        """A sub-trace over ``[start, stop)`` writes."""
        if not 0 <= start < stop <= len(self):
            raise ValueError(f"invalid slice [{start}, {stop}) of {len(self)} writes")
        return WriteTrace(
            addresses=self.addresses[start:stop].copy(),
            user_lines=self.user_lines,
            data=None if self.data is None else self.data[start:stop].copy(),
            source=f"{self.source}[{start}:{stop}]",
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def save(self, path: "str | Path") -> Path:
        """Write the trace to a compressed ``.npz`` file."""
        path = Path(path)
        payload: Mapping[str, object] = {
            "format_version": np.int64(FORMAT_VERSION),
            "addresses": self.addresses,
            "user_lines": np.int64(self.user_lines),
            "source": np.bytes_(self.source.encode()),
        }
        if self.data is not None:
            payload = {**payload, "data": self.data}
        np.savez_compressed(path, **payload)
        # numpy appends .npz when missing; normalize the returned path.
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(cls, path: "str | Path") -> "WriteTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(Path(path)) as archive:
            version = int(archive["format_version"])
            if version != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace format version {version} "
                    f"(this build reads {FORMAT_VERSION})"
                )
            return cls(
                addresses=archive["addresses"],
                user_lines=int(archive["user_lines"]),
                data=archive["data"] if "data" in archive.files else None,
                source=bytes(archive["source"]).decode(),
            )
