"""Write-trace infrastructure.

The paper's NVMsim "generates the read/write requests according to the
attack models, thus avoiding reading memory requests from the workload
files" -- generation is faster, but trace files are how third parties
audit an attack and how real workloads enter a lifetime study.  This
package provides both directions:

* :func:`~repro.trace.record.record_trace` captures any
  :class:`~repro.attacks.base.AttackModel` into a
  :class:`~repro.trace.format.WriteTrace`;
* :class:`~repro.trace.format.WriteTrace` round-trips through compressed
  ``.npz`` files;
* :class:`~repro.trace.replay.TraceAttack` replays a trace as an attack
  model: the exact simulator consumes it verbatim, and the fluid
  simulator consumes the *empirical profile* that
  :mod:`repro.trace.stats` classifies from the trace (uniform /
  concentrated / skewed).
"""

from repro.trace.format import WriteTrace
from repro.trace.record import record_trace
from repro.trace.replay import TraceAttack
from repro.trace.stats import TraceStats, analyze_trace

__all__ = [
    "WriteTrace",
    "record_trace",
    "TraceAttack",
    "TraceStats",
    "analyze_trace",
]
