"""Recording attack models into traces."""

from __future__ import annotations

import itertools

import numpy as np

from repro.attacks.base import AttackModel
from repro.trace.format import WriteTrace
from repro.util.rng import RandomState
from repro.util.validation import require_positive_int


def record_trace(
    attack: AttackModel,
    user_lines: int,
    length: int,
    rng: RandomState = None,
    *,
    keep_data: bool = False,
) -> WriteTrace:
    """Capture ``length`` writes of ``attack`` into a :class:`WriteTrace`.

    Parameters
    ----------
    attack:
        Any attack/workload model.
    user_lines:
        Logical address space to record against.
    length:
        Number of writes to capture.
    keep_data:
        Also record payloads (zero-filled where the attack supplies none).
    """
    require_positive_int(user_lines, "user_lines")
    require_positive_int(length, "length")

    addresses = np.empty(length, dtype=np.int64)
    data = np.zeros(length, dtype=np.uint64) if keep_data else None
    stream = attack.stream(user_lines, rng)
    for index, request in enumerate(itertools.islice(stream, length)):
        addresses[index] = request.address
        if data is not None and request.data is not None:
            data[index] = request.data
    return WriteTrace(
        addresses=addresses,
        user_lines=user_lines,
        data=data,
        source=attack.describe(),
    )
