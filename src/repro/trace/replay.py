"""Replaying traces as attack models."""

from __future__ import annotations

from typing import Iterator

from repro.attacks.base import AccessProfile, AttackModel, WriteRequest
from repro.trace.format import WriteTrace
from repro.trace.stats import empirical_profile
from repro.util.rng import RandomState


class TraceAttack(AttackModel):
    """Replay a recorded trace as an attack model.

    The exact simulator consumes the trace verbatim (looping when the
    simulation outlives the recording -- standard practice for
    finite-trace lifetime studies); the fluid simulator consumes the
    trace's empirical profile.

    Parameters
    ----------
    trace:
        The recorded write trace.
    loop:
        Whether the stream restarts after the last write (default) or
        stops, ending an exact simulation early.
    """

    name = "trace"

    def __init__(self, trace: WriteTrace, loop: bool = True) -> None:
        self._trace = trace
        self._loop = loop

    @property
    def trace(self) -> WriteTrace:
        """The trace being replayed."""
        return self._trace

    def profile(self, user_lines: int) -> AccessProfile:
        if user_lines != self._trace.user_lines:
            raise ValueError(
                f"trace was recorded over {self._trace.user_lines} lines but the "
                f"device exposes {user_lines}"
            )
        return empirical_profile(self._trace)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        if user_lines != self._trace.user_lines:
            raise ValueError(
                f"trace was recorded over {self._trace.user_lines} lines but the "
                f"device exposes {user_lines}"
            )
        addresses = self._trace.addresses
        data = self._trace.data
        while True:
            for index in range(addresses.size):
                yield WriteRequest(
                    address=int(addresses[index]),
                    data=None if data is None else int(data[index]),
                )
            if not self._loop:
                return

    def describe(self) -> str:
        return (
            f"trace replay ({len(self._trace)} writes from {self._trace.source!r})"
        )
