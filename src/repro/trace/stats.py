"""Trace statistics and empirical profile classification.

Given a finite trace, the fluid simulator needs an
:class:`~repro.attacks.base.AccessProfile`.  :func:`analyze_trace`
computes the statistics that identify the paper's three traffic shapes:

* **uniformity** -- the ratio of the empirical histogram's coefficient of
  variation to that of an ideal uniform sample of the same length (a
  finite uniform trace is not perfectly flat; Poisson noise sets the
  baseline);
* **burstiness** -- the fraction of writes that immediately repeat the
  previous address, which separates a moving hot spot (BPA, repeated:
  high) from skewed-but-interleaved traffic (Zipf: low).

Classification: near-unit uniformity -> ``uniform``; high burstiness ->
``concentrated``; otherwise ``skewed`` with the empirical histogram as
the weight vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    PROFILE_SKEWED,
    PROFILE_UNIFORM,
    AccessProfile,
)
from repro.trace.format import WriteTrace

#: Uniformity ratios below this classify as uniform traffic.
UNIFORMITY_THRESHOLD: float = 3.0

#: Repeat fractions above this classify as concentrated traffic.
BURSTINESS_THRESHOLD: float = 0.5


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a write trace.

    Attributes
    ----------
    writes:
        Trace length.
    user_lines:
        Logical address space size.
    touched_lines:
        Distinct addresses written.
    max_share:
        Largest per-line share of the writes.
    uniformity:
        Histogram CoV over the Poisson-noise CoV of an ideal uniform
        trace of the same length (1.0 = indistinguishable from uniform).
    burstiness:
        Fraction of writes repeating the immediately preceding address.
    """

    writes: int
    user_lines: int
    touched_lines: int
    max_share: float
    uniformity: float
    burstiness: float

    @property
    def kind(self) -> str:
        """The classified profile kind."""
        if self.uniformity <= UNIFORMITY_THRESHOLD:
            return PROFILE_UNIFORM
        if self.burstiness >= BURSTINESS_THRESHOLD:
            return PROFILE_CONCENTRATED
        return PROFILE_SKEWED


def analyze_trace(trace: WriteTrace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    histogram = trace.histogram()
    writes = len(trace)
    mean = writes / trace.user_lines
    cov = float(histogram.std() / mean) if mean > 0 else float("inf")
    # An ideal uniform trace of this length has Poisson-noise CoV
    # sqrt(1/mean); guard the degenerate single-write-per-eternity case.
    noise_floor = float(np.sqrt(1.0 / mean)) if mean > 0 else float("inf")
    uniformity = cov / noise_floor if noise_floor > 0 else float("inf")

    repeats = int(np.count_nonzero(trace.addresses[1:] == trace.addresses[:-1]))
    burstiness = repeats / max(writes - 1, 1)

    return TraceStats(
        writes=writes,
        user_lines=trace.user_lines,
        touched_lines=int(np.count_nonzero(histogram)),
        max_share=float(histogram.max() / writes),
        uniformity=uniformity,
        burstiness=burstiness,
    )


def empirical_profile(trace: WriteTrace) -> AccessProfile:
    """Classify a trace into the fluid simulator's profile language."""
    stats = analyze_trace(trace)
    if stats.kind == PROFILE_UNIFORM:
        return AccessProfile(kind=PROFILE_UNIFORM)
    if stats.kind == PROFILE_CONCENTRATED:
        return AccessProfile(kind=PROFILE_CONCENTRATED, hot_fraction=1.0)
    return AccessProfile(kind=PROFILE_SKEWED, weights=trace.histogram() + 1e-12)
