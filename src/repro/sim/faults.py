"""Deterministic fault injection for the simulation execution layer.

The resilience machinery in :mod:`repro.sim.runner` (timeouts, retries,
pool respawns, checkpoint/resume) is only trustworthy if it can be
exercised on demand.  This module injects the failure modes a real fleet
sees -- worker crashes, hangs, transient exceptions, and corrupted cache
entries -- *deterministically*: every injection decision is a pure
function of the fault spec's seed, the fault kind, the task's stable
key, and the attempt number.  A retried task therefore re-rolls its
faults exactly the same way on every run of the harness, which is what
lets the tests assert that a faulty sweep converges to results
bit-identical to a fault-free one.

Activation
----------
Faults are off unless a spec is installed.  Three equivalent routes:

* the ``REPRO_FAULT_SPEC`` environment variable (inherited by worker
  processes, so pool workers inject without extra plumbing);
* ``install(spec)`` from test code;
* the CLI's ``--inject-faults SPEC`` flag (which sets the env var so
  workers see it too).

Spec grammar
------------
A spec is a comma-separated list of ``key=value`` pairs::

    crash=0.2,hang=0.05,transient=0.1,corrupt-cache=0.1,seed=7,hang-seconds=30

``crash``/``hang``/``transient``/``corrupt-cache``/``corrupt-state`` are
probabilities in ``[0, 1]`` (``corrupt-state`` is rolled per engine
round and flips live simulator state so the :mod:`repro.verify`
invariant layer can prove it detects corruption);
``coordinator-crash`` and ``service-kill`` target the *control plane*:
the fabric coordinator crash-restarts from its lease ledger, and a
dedicated service process hard-exits mid-dispatch (see
:func:`mark_service_process`);
``seed`` (int) decorrelates whole campaigns; and
``hang-seconds`` bounds an injected hang (default 3600 s -- effectively
forever next to any sane ``--timeout``, but the process stays killable).

Crash semantics
---------------
In a pool worker an injected crash calls :func:`os._exit`, which kills
the worker mid-task exactly like an OOM kill and surfaces to the
supervisor as a broken pool.  In-process (serial) execution raises
:class:`InjectedCrash` instead -- killing the caller's interpreter would
take the test runner down with it.  Worker processes self-identify via
the pool initializer (:func:`mark_worker_process`).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

#: Environment variable holding the active fault spec (empty/absent = off).
FAULT_SPEC_ENV: str = "REPRO_FAULT_SPEC"

#: Exit code used by injected hard crashes (distinctive in core dumps/logs).
CRASH_EXIT_CODE: int = 77

#: Recognized spec keys and the FaultSpec field each maps to.
_SPEC_KEYS = {
    "crash": "crash",
    "hang": "hang",
    "transient": "transient",
    "corrupt-cache": "corrupt_cache",
    "corrupt-state": "corrupt_state",
    "drop": "drop",
    "duplicate": "duplicate",
    "delay": "delay",
    "partition": "partition",
    "slow-worker": "slow_worker",
    "coordinator-crash": "coordinator_crash",
    "service-kill": "service_kill",
    "seed": "seed",
    "hang-seconds": "hang_seconds",
    "delay-seconds": "delay_seconds",
    "partition-seconds": "partition_seconds",
    "slow-seconds": "slow_seconds",
}

#: FaultSpec fields that hold probabilities (validated to [0, 1] and
#: consulted by :attr:`FaultSpec.active`).
_PROBABILITY_FIELDS = (
    "crash",
    "hang",
    "transient",
    "corrupt_cache",
    "corrupt_state",
    "drop",
    "duplicate",
    "delay",
    "partition",
    "slow_worker",
    "coordinator_crash",
    "service_kill",
)

#: Corruption shapes a ``corrupt-state`` injection picks from, each
#: targeting a different invariant family (see
#: :func:`repro.sim.lifetime._apply_state_corruption`).
CORRUPT_KINDS = ("wear", "mapping", "death")


class FaultSpecError(ValueError):
    """A fault spec string failed to parse or had out-of-range values."""


class InjectedCrash(RuntimeError):
    """An in-process stand-in for a worker crash (serial execution)."""


class TransientFault(RuntimeError):
    """An injected transient error; retryable by design."""


@dataclass(frozen=True)
class FaultSpec:
    """Probabilities and seed of one fault-injection campaign.

    Attributes
    ----------
    crash / hang / transient / corrupt_cache / corrupt_state:
        Per-attempt (per-store for ``corrupt_cache``, per-engine-round
        for ``corrupt_state``) injection probabilities in ``[0, 1]``.
    drop / duplicate / delay:
        Per-message network fault probabilities for the fabric wire
        layer: a dropped message is never sent (the sender's retransmit
        path recovers), a duplicated one is sent twice (the coordinator's
        idempotent commits absorb it), a delayed one sleeps
        ``delay_seconds`` before the send.
    partition:
        Per-lease probability that the worker holding the lease goes
        silent (no heartbeats, commit deferred ``partition_seconds`` over
        a fresh connection) -- the lease expires and the task is
        re-dispatched, exercising the duplicate-commit path.
    slow_worker:
        Per-attempt probability that a worker sleeps ``slow_seconds``
        before executing, long enough for a short lease to expire and
        the task to be stolen.
    coordinator_crash:
        Per-completed-task probability that the fabric *coordinator*
        crashes right after absorbing that task's completion -- the
        supervisor rebuilds it from the durable lease ledger and workers
        reconnect with backoff.
    service_kill:
        Per-dispatch probability that the job-service process hard-kills
        itself (``os._exit``) at the top of a dispatch, simulating a
        ``kill -9`` mid-batch; only armed in processes that called
        :func:`mark_service_process`, so embedded test services never
        take the test runner down.
    seed:
        Campaign seed; decorrelates otherwise-identical campaigns.
    hang_seconds / delay_seconds / partition_seconds / slow_seconds:
        Durations of the injected hang / message delay / partition /
        slow-worker stall.
    """

    crash: float = 0.0
    hang: float = 0.0
    transient: float = 0.0
    corrupt_cache: float = 0.0
    corrupt_state: float = 0.0
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    partition: float = 0.0
    slow_worker: float = 0.0
    coordinator_crash: float = 0.0
    service_kill: float = 0.0
    seed: int = 0
    hang_seconds: float = 3600.0
    delay_seconds: float = 0.05
    partition_seconds: float = 0.5
    slow_seconds: float = 0.25

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(
                    f"fault probability {name!r} must be in [0, 1], got {value!r}"
                )
        for key, field_name in _SPEC_KEYS.items():
            if not field_name.endswith("_seconds"):
                continue
            if getattr(self, field_name) < 0:
                raise FaultSpecError(
                    f"{key} must be >= 0, got {getattr(self, field_name)!r}"
                )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the ``key=value,...`` spec grammar (see module docstring)."""
        spec = cls()
        text = text.strip()
        if not text:
            return spec
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep:
                raise FaultSpecError(
                    f"malformed fault spec item {item!r}; expected key=value"
                )
            if key not in _SPEC_KEYS:
                raise FaultSpecError(
                    f"unknown fault spec key {key!r}; "
                    f"choose from {sorted(_SPEC_KEYS)}"
                )
            field_name = _SPEC_KEYS[key]
            try:
                value: object = int(raw) if field_name == "seed" else float(raw)
            except ValueError:
                raise FaultSpecError(
                    f"fault spec key {key!r} needs a number, got {raw!r}"
                ) from None
            spec = replace(spec, **{field_name: value})
        return spec

    def to_spec(self) -> str:
        """Render back to the spec grammar (parse/to_spec round-trips)."""
        parts = []
        defaults = FaultSpec()
        for key, field_name in _SPEC_KEYS.items():
            value = getattr(self, field_name)
            if value != getattr(defaults, field_name):
                rendered = str(int(value)) if field_name == "seed" else f"{value:g}"
                parts.append(f"{key}={rendered}")
        return ",".join(parts)

    @property
    def active(self) -> bool:
        """Whether any fault has a nonzero probability."""
        return any(getattr(self, name) > 0.0 for name in _PROBABILITY_FIELDS)


def _uniform(seed: int, kind: str, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one injection decision."""
    digest = hashlib.sha256(f"{seed}:{kind}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


class FaultInjector:
    """Executes one :class:`FaultSpec`'s injection decisions.

    All decisions are deterministic in ``(spec.seed, kind, key, attempt)``
    so a supervised retry of the same task re-rolls each fault
    independently of scheduling, process boundaries, or wall clock.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self._spec = spec
        self._injected = {
            "crash": 0,
            "hang": 0,
            "transient": 0,
            "corrupt-cache": 0,
            "corrupt-state": 0,
            "drop": 0,
            "duplicate": 0,
            "delay": 0,
            "partition": 0,
            "slow-worker": 0,
            "coordinator-crash": 0,
            "service-kill": 0,
        }

    @property
    def spec(self) -> FaultSpec:
        """The campaign spec this injector executes."""
        return self._spec

    @property
    def injected(self) -> dict:
        """Per-kind injection counts observed by *this process*."""
        return dict(self._injected)

    def _roll(self, kind: str, probability: float, key: str, attempt: int) -> bool:
        if probability <= 0.0:
            return False
        return _uniform(self._spec.seed, kind, key, attempt) < probability

    def before_execute(self, key: str, attempt: int) -> None:
        """Injection point at the top of a task attempt.

        Rolls crash, hang, and transient faults in that fixed order.  A
        crash either hard-exits (pool worker) or raises
        :class:`InjectedCrash` (in-process); a hang sleeps for
        ``hang_seconds``; a transient raises :class:`TransientFault`.
        """
        if self._roll("crash", self._spec.crash, key, attempt):
            self._injected["crash"] += 1
            if is_worker_process():
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrash(
                f"injected crash (task {key[:12]}..., attempt {attempt})"
            )
        if self._roll("hang", self._spec.hang, key, attempt):
            self._injected["hang"] += 1
            time.sleep(self._spec.hang_seconds)
        if self._roll("transient", self._spec.transient, key, attempt):
            self._injected["transient"] += 1
            raise TransientFault(
                f"injected transient fault (task {key[:12]}..., attempt {attempt})"
            )

    def message_fault(self, kind: str, channel: str, seq: int) -> bool:
        """Per-message network fault roll for the fabric wire layer.

        ``kind`` is ``"drop"``, ``"duplicate"``, or ``"delay"``;
        ``channel`` identifies the sender (shard id) and ``seq`` its
        message counter, so every retransmission re-rolls independently
        -- a dropped commit's resend can get through, exactly as a
        retried attempt can escape a transient.
        """
        probability = getattr(self._spec, kind)
        hit = self._roll(kind, probability, f"msg:{channel}", seq)
        if hit:
            self._injected[kind] += 1
        return hit

    def partition_now(self, channel: str, lease_seq: int) -> bool:
        """Whether the worker should simulate a partition for this lease
        (silent heartbeats + deferred commit over a fresh connection)."""
        hit = self._roll("partition", self._spec.partition, f"lease:{channel}", lease_seq)
        if hit:
            self._injected["partition"] += 1
        return hit

    def slow_worker_stall(self, key: str, attempt: int) -> float:
        """Pre-execution stall seconds for a slow-worker injection
        (0.0 when the roll misses); deterministic in ``(key, attempt)``
        like the crash/hang/transient rolls."""
        if not self._roll("slow-worker", self._spec.slow_worker, key, attempt):
            return 0.0
        self._injected["slow-worker"] += 1
        return self._spec.slow_seconds

    def coordinator_crash_now(self, key: str) -> bool:
        """Whether the coordinator should crash after absorbing the
        completion of the task identified by ``key``.

        Rolled once per task (attempt 0): a task completes exactly once,
        so a hit schedules exactly one crash and the campaign always
        converges -- after the rebuild that key is done and never
        re-rolls.
        """
        hit = self._roll(
            "coordinator-crash", self._spec.coordinator_crash, f"coord:{key}", 0
        )
        if hit:
            self._injected["coordinator-crash"] += 1
        return hit

    def service_kill_now(self, batch_key: str, dispatch_attempt: int) -> bool:
        """Whether the service process should hard-kill itself at the top
        of this dispatch of ``batch_key``.

        ``dispatch_attempt`` is the job's durable dispatch counter, so a
        restarted service re-rolls with a fresh attempt number and a
        sub-1.0 probability always lets the job through eventually.
        Only returns ``True`` in a process marked via
        :func:`mark_service_process`.
        """
        if not is_service_process():
            return False
        hit = self._roll(
            "service-kill", self._spec.service_kill, f"svc:{batch_key}", dispatch_attempt
        )
        if hit:
            self._injected["service-kill"] += 1
        return hit

    def corrupt_cache_entry(self, key: str) -> bool:
        """Whether the cache entry being stored under ``key`` should be
        written corrupted (truncated mid-JSON)."""
        hit = self._roll("corrupt-cache", self._spec.corrupt_cache, key, 0)
        if hit:
            self._injected["corrupt-cache"] += 1
        return hit

    def corrupt_state(self, key: str, round_index: int) -> Optional[str]:
        """Injection point at the top of an engine round.

        Returns the corruption kind to apply (one of
        :data:`CORRUPT_KINDS`) or ``None``.  Both the hit decision and
        the kind are deterministic in ``(seed, key, round_index)`` so a
        replayed bundle re-corrupts the same round the same way.
        """
        if not self._roll(
            "corrupt-state", self._spec.corrupt_state, key, round_index
        ):
            return None
        self._injected["corrupt-state"] += 1
        draw = _uniform(self._spec.seed, "corrupt-state-kind", key, round_index)
        return CORRUPT_KINDS[int(draw * len(CORRUPT_KINDS)) % len(CORRUPT_KINDS)]


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------

_installed: Optional[FaultInjector] = None
_env_injector: Optional[FaultInjector] = None
_env_text: Optional[str] = None
_is_worker = False
_is_service = False
_task_local = threading.local()


@contextmanager
def task_scope(key: str) -> Iterator[None]:
    """Pin the supervised task key for the duration of one attempt.

    The engine's state-corruption rolls and the shadow-audit sampler key
    off the executing task so decisions survive retries, process
    boundaries, and scheduling order.  Standalone runs (no supervisor)
    see an empty key and derive one from the run's own identity.

    The pin is thread-local: the job service's dispatcher threads run
    attempts concurrently with other code in the same process, and a
    run on one thread must never inherit the key of a task executing
    on another -- the corruption rolls would silently re-key.
    """
    previous = getattr(_task_local, "key", "")
    _task_local.key = key
    try:
        yield
    finally:
        _task_local.key = previous


def active_task_key() -> str:
    """The task key pinned by the calling thread's :func:`task_scope` (or "")."""
    return getattr(_task_local, "key", "")


def install(spec: "FaultSpec | str | None") -> Optional[FaultInjector]:
    """Install ``spec`` as this process's active injector (None = off).

    Test-code route; takes precedence over the environment variable.
    Returns the installed injector (``None`` for an inactive spec).
    """
    global _installed
    if spec is None:
        _installed = None
        return None
    if isinstance(spec, str):
        spec = FaultSpec.parse(spec)
    _installed = FaultInjector(spec) if spec.active else None
    return _installed


def active_injector() -> Optional[FaultInjector]:
    """The process's active injector, or ``None`` when faults are off.

    Resolution order: an explicitly :func:`install`-ed injector, then the
    ``REPRO_FAULT_SPEC`` environment variable (parsed once per distinct
    value, so workers pay the parse cost only on their first task).
    """
    global _env_injector, _env_text
    if _installed is not None:
        return _installed
    text = os.environ.get(FAULT_SPEC_ENV, "")
    if not text:
        return None
    if text != _env_text:
        spec = FaultSpec.parse(text)
        _env_injector = FaultInjector(spec) if spec.active else None
        _env_text = text
    return _env_injector


def mark_worker_process(fault_spec_text: str = "") -> None:
    """Pool-worker initializer: enable hard crashes and seed the spec.

    Passing the spec text explicitly makes workers independent of
    environment inheritance quirks (e.g. ``forkserver`` preloading).
    Also restores the default SIGTERM disposition: forked workers would
    otherwise inherit the supervisor's SIGTERM-to-KeyboardInterrupt
    handler and die with spurious tracebacks when the pool is torn down.
    """
    global _is_worker
    _is_worker = True
    if fault_spec_text:
        os.environ[FAULT_SPEC_ENV] = fault_spec_text
    try:
        import signal

        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ImportError, ValueError, OSError, AttributeError):
        pass


def is_worker_process() -> bool:
    """Whether this process marked itself as a pool worker."""
    return _is_worker


def mark_service_process() -> None:
    """Arm ``service-kill`` injections in this process.

    Called by the ``repro.service`` entry point only.  Embedded services
    (a :class:`~repro.service.core.SimService` constructed inside a test
    process) never mark themselves, so a ``service-kill`` spec can be
    active fleet-wide without ever hard-exiting the test runner.
    """
    global _is_service
    _is_service = True


def is_service_process() -> bool:
    """Whether this process marked itself as a dedicated service process."""
    return _is_service
