"""Experiment configuration: the paper's evaluation setup, scaled.

The paper's device is a 1 GB bank of 2048 regions with the Zhang-Li
endurance distribution.  Normalized lifetime is scale-invariant in the
number of lines per region and in the absolute endurance scale
(property-tested), so the default experiment geometry keeps the 2048
regions and shrinks each region to a handful of lines.

The default endurance *shape* is the paper's own tractable linear model
with variation degree ``q = 50`` (Section 3.1): the paper quotes ``EH``
roughly 50x ``EL`` for its setup, its analytic results (3.9% under UAA,
38.1%/22.2%/20.8% for Max-WE/PCD/PS-worst at p=0.1) are all stated for
this model, and our calibration (EXPERIMENTS.md) shows it reproduces the
measured headline numbers closely.  The Zhang-Li power-law map is
available for robustness sweeps via ``endurance_model="zhang-li"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.device.errors import ConfigurationError
from repro.endurance.emap import EnduranceMap
from repro.endurance.generators import (
    lognormal_endurance_map,
    zhang_li_endurance_map,
)
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map

#: The paper's region count.
DEFAULT_REGIONS: int = 2048

#: Scaled lines per region (paper: 8192 at 64 B lines; lifetimes are
#: invariant to this, see tests/sim/test_scale_invariance.py).
DEFAULT_LINES_PER_REGION: int = 8

#: The paper's process-variation degree (EH / EL).
DEFAULT_Q: float = 50.0

#: Endurance scale for the weakest line; absolute scale cancels out of
#: every normalized result.
DEFAULT_E_LOW: float = 1.0e4

#: Supported endurance model families.
ENDURANCE_MODELS = ("linear", "zhang-li", "lognormal")


def default_endurance_map(
    regions: int = DEFAULT_REGIONS,
    lines_per_region: int = DEFAULT_LINES_PER_REGION,
    q: float = DEFAULT_Q,
    endurance_model: str = "linear",
    seed: Optional[int] = 2019,
) -> EnduranceMap:
    """Build the evaluation endurance map.

    Parameters
    ----------
    regions, lines_per_region:
        Device shape.
    q:
        Variation degree ``EH / EL`` (linear model only).
    endurance_model:
        ``"linear"`` (paper Section 3.1 shape, the default),
        ``"zhang-li"`` (Eq. 1-2 power law) or ``"lognormal"``.
    seed:
        Placement/sampling seed.
    """
    if endurance_model == "linear":
        model = LinearEnduranceModel.from_q(q, e_low=DEFAULT_E_LOW)
        return linear_endurance_map(
            regions * lines_per_region, regions, model, layout="shuffled", rng=seed
        )
    if endurance_model == "zhang-li":
        return zhang_li_endurance_map(
            regions * lines_per_region, regions, deterministic=True, rng=seed
        )
    if endurance_model == "lognormal":
        return lognormal_endurance_map(
            regions * lines_per_region, regions, rng=seed
        )
    raise ConfigurationError(
        f"endurance_model must be one of {ENDURANCE_MODELS}, got {endurance_model!r}"
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """One evaluation configuration (device + scheme parameters + seed).

    Attributes mirror the paper's Section 5.1/5.2 knobs; the sweep drivers
    in :mod:`repro.sim.experiments` vary one knob at a time from this
    base, exactly as the paper's figures do.
    """

    regions: int = DEFAULT_REGIONS
    lines_per_region: int = DEFAULT_LINES_PER_REGION
    q: float = DEFAULT_Q
    endurance_model: str = "linear"
    spare_fraction: float = 0.1
    swr_fraction: float = 0.9
    seed: int = 2019
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.regions <= 0 or self.lines_per_region <= 0:
            raise ConfigurationError("regions and lines_per_region must be positive")
        if self.endurance_model not in ENDURANCE_MODELS:
            raise ConfigurationError(
                f"endurance_model must be one of {ENDURANCE_MODELS}, "
                f"got {self.endurance_model!r}"
            )
        if not 0.0 <= self.spare_fraction < 1.0:
            raise ConfigurationError(
                f"spare_fraction must be in [0, 1), got {self.spare_fraction}"
            )
        if not 0.0 <= self.swr_fraction <= 1.0:
            raise ConfigurationError(
                f"swr_fraction must be in [0, 1], got {self.swr_fraction}"
            )
        if self.q < 1.0:
            raise ConfigurationError(f"q must be >= 1, got {self.q}")

    @property
    def total_lines(self) -> int:
        """Physical line count of the configured device."""
        return self.regions * self.lines_per_region

    def make_emap(self) -> EnduranceMap:
        """Materialize the configured endurance map."""
        return default_endurance_map(
            self.regions,
            self.lines_per_region,
            self.q,
            self.endurance_model,
            self.seed,
        )

    def with_(self, **changes: object) -> "ExperimentConfig":
        """Return a modified copy (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]
