"""Executor protocol: one supervision contract, many execution backends.

:class:`~repro.sim.runner.SimRunner` owns everything that is backend
agnostic -- task identity, cache/checkpoint scanning, ensemble chunking,
result fan-out, stats -- and delegates the actual *supervised execution*
of the pending tasks to an :class:`ExecutorBackend`.  Two backends ship
with the repo:

* the in-tree process pool (``"pool"``, the default) -- jobs worth of
  local worker processes under the PR-3 supervisor (deadlines, retry
  backoff, crash isolation, innocent-requeue on pool teardown); and
* the multi-host fabric (``"fabric"``, :mod:`repro.fabric`) -- a
  socket-served coordinator handing lease-guarded work to remote worker
  loops, with work stealing, per-shard checkpoint ledgers, and graceful
  degradation onto survivors.

The contract is deliberately small: a backend receives the pending
:class:`SupervisedTask` states and must deliver every completion through
``on_complete`` *on the calling thread* (the callback touches the cache
and the primary checkpoint journal, which are not thread-safe), filling
an :class:`ExecutionSummary` with whatever did not complete.  Retry
bookkeeping is shared via :func:`handle_attempt_failure` /
:func:`mark_skipped` so every backend charges attempts, honors
:class:`~repro.sim.resilience.ResiliencePolicy` backoff, and shapes
:class:`~repro.sim.resilience.FailureRecord` entries identically --
that uniformity is what keeps fault-injected runs bit-identical across
backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from time import monotonic
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.sim.resilience import FailureRecord, ResiliencePolicy, is_retryable
from repro.util.events import EventLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.sim.resilience import Checkpoint
    from repro.sim.result import SimulationResult


@dataclass
class SupervisedTask:
    """Mutable supervision state of one pending task.

    ``elapsed`` accumulates *worker-measured* run time only (plus, for
    attempts that died without a worker report, the supervisor-observed
    attempt wall).  Pool queue wait, harvest latency, and time sat in a
    doomed pool are tracked separately -- they are supervisor overhead,
    not task runtime.

    ``attempts`` counts *started* attempts; the 0-based attempt number a
    backend passes to ``_execute_supervised`` (which seeds the fault
    injector's deterministic rolls) is the value *before* incrementing.
    Innocent requeues -- a task pulled back unrun from a torn-down pool
    or an expired lease -- decrement ``attempts`` so the re-dispatch
    replays the same attempt number, keeping injected faults and retry
    backoff bit-identical to an unperturbed schedule.
    """

    index: int
    task: object
    key: str
    label: str
    attempts: int = 0
    not_before: float = 0.0
    elapsed: float = 0.0
    queue_seconds: float = 0.0
    harvest_seconds: float = 0.0
    requeue_seconds: float = 0.0
    #: Member-level states folded into this one (ensemble chunks only):
    #: completion and failure fan back out to these.
    members: Optional[List["SupervisedTask"]] = None


@dataclass
class ExecutionSummary:
    """What a supervised execution pass observed.

    ``jobs_used`` is the parallelism the backend actually achieved (a
    pool falls back to 1 for unpicklable or tiny batches; the fabric
    reports surviving workers).  ``degraded`` flags a run that finished
    on fewer resources than requested -- completed, but worth surfacing
    in stats rather than silently shrugging off dead workers.
    """

    failures: Dict[int, FailureRecord] = field(default_factory=dict)
    retries: int = 0
    pool_respawns: int = 0
    interrupted: bool = False
    jobs_used: int = 1
    degraded: bool = False


#: Completion callback: ``(state, result, elapsed_seconds)``.  For
#: ensemble chunks ``result`` is the member-ordered result list.
CompletionCallback = Callable[[SupervisedTask, object, float], None]


class ExecutorBackend(ABC):
    """Strategy interface for supervised execution of pending tasks."""

    #: Spec name (``"pool"`` / ``"fabric"``), for stats and error text.
    name: str = "backend"

    @abstractmethod
    def execute(
        self,
        pending: Sequence[SupervisedTask],
        *,
        jobs: int,
        policy: ResiliencePolicy,
        events: EventLog,
        on_complete: CompletionCallback,
        metrics: MetricsRegistry,
        checkpoint: "Optional[Checkpoint]" = None,
    ) -> ExecutionSummary:
        """Run every pending task under supervision.

        Must call ``on_complete`` exactly once per completed state, on
        the calling thread, and record each terminal non-completion in
        the summary's ``failures``.  ``checkpoint`` (when attached) lets
        distributed backends derive per-shard ledger paths; the primary
        journal itself is written by ``on_complete`` on the caller, so
        backends must never append to it directly.
        """


def handle_attempt_failure(
    policy: ResiliencePolicy,
    state: SupervisedTask,
    error: BaseException,
    kind: str,
    ready: "deque[SupervisedTask]",
    summary: ExecutionSummary,
    events: EventLog,
) -> None:
    """Retry ``state`` with backoff, or record its terminal failure.

    The shared arbiter for every backend: one attempt has been charged,
    and either the policy grants a retry (backoff stamped into
    ``not_before``, state appended to ``ready``) or the task is failed
    with a structured :class:`~repro.sim.resilience.FailureRecord`.
    """
    events.record(
        f"task-{kind}",
        state.index,
        key=state.key[:12],
        attempt=state.attempts,
        error=type(error).__name__,
    )
    if state.attempts < policy.max_attempts and is_retryable(error):
        summary.retries += 1
        state.not_before = monotonic() + policy.retry_delay(
            state.key, state.attempts
        )
        events.record("task-retry", state.index, attempt=state.attempts)
        ready.append(state)
        return
    summary.failures[state.index] = FailureRecord.from_exception(
        index=state.index,
        key=state.key,
        label=state.label,
        kind=kind,
        attempts=state.attempts,
        error=error,
        elapsed_seconds=state.elapsed,
    )
    events.record(
        "task-failed", state.index, failure_kind=kind, attempts=state.attempts
    )


def mark_skipped(
    ready: "deque[SupervisedTask]",
    summary: ExecutionSummary,
    kind: str = "skipped",
) -> None:
    """Fail every still-queued state as ``kind`` (fail-fast / interrupt)."""
    while ready:
        state = ready.popleft()
        summary.failures[state.index] = FailureRecord(
            index=state.index,
            key=state.key,
            label=state.label,
            kind=kind,
            attempts=state.attempts,
        )
