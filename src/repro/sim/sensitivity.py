"""Local sensitivity analysis of the lifetime to the design parameters.

Which knob matters most around an operating point?  For each parameter
``θ`` of the evaluation configuration, :func:`sensitivity_analysis`
perturbs it by a relative step and reports the lifetime **elasticity**

```
E_θ = (ΔL / L) / (Δθ / θ)
```

-- the percent change in normalized lifetime per percent change in the
parameter.  At the paper's operating point (p = 10%, q_swr = 90%,
q = 50) this quantifies Section 5.2's qualitative reasoning: lifetime is
strongly elastic in the spare fraction, weakly (and negatively) in the
variation degree, and nearly inelastic in the SWR share -- which is why
the paper can trade the SWR share for mapping-table savings so cheaply.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import ResultCache
from repro.sim.config import ExperimentConfig
from repro.sim.resilience import Checkpoint, ResiliencePolicy
from repro.sim.runner import SimRunner, SimTask
from repro.util.validation import require_fraction

#: Parameters the analysis can perturb.
PARAMETERS = ("spare_fraction", "swr_fraction", "q")


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of the lifetime with respect to one parameter.

    Attributes
    ----------
    parameter:
        The perturbed configuration field.
    base_value / base_lifetime:
        The operating point.
    perturbed_value / perturbed_lifetime:
        The evaluated neighbour.
    elasticity:
        Relative lifetime change per relative parameter change.
    """

    parameter: str
    base_value: float
    base_lifetime: float
    perturbed_value: float
    perturbed_lifetime: float

    @property
    def elasticity(self) -> float:
        relative_dl = (self.perturbed_lifetime - self.base_lifetime) / self.base_lifetime
        relative_dtheta = (self.perturbed_value - self.base_value) / self.base_value
        return relative_dl / relative_dtheta


def _task(
    config: ExperimentConfig,
    engine: str,
    label: str,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
) -> SimTask:
    """Max-WE-under-UAA evaluation of ``config`` as a declarative task.

    Equivalent to the historical direct ``simulate_lifetime`` call (same
    emap, attack, scheme, and seed), but routable through a
    :class:`~repro.sim.runner.SimRunner` for fan-out, caching, and
    supervision.
    """
    return SimTask(
        attack="uaa",
        sparing="max-we",
        p=config.spare_fraction,
        swr=config.swr_fraction,
        config=config,
        engine=engine,
        paranoia=paranoia,
        shadow_sample=shadow_sample,
        label=label,
    )


def sensitivity_analysis(
    config: ExperimentConfig | None = None,
    *,
    relative_step: float = 0.1,
    parameters: Tuple[str, ...] = PARAMETERS,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "fluid-batched",
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
    backend: object = None,
) -> Dict[str, Sensitivity]:
    """Elasticities of Max-WE's UAA lifetime around a configuration.

    The base point and every perturbed neighbour are expressed as
    declarative tasks and executed through one
    :class:`~repro.sim.runner.SimRunner`, so the analysis accepts the
    standard execution knobs (``jobs``, ``cache``, ``policy``,
    ``checkpoint``) with results identical to the historical serial loop.

    Parameters
    ----------
    config:
        Operating point; defaults to the paper's.
    relative_step:
        Relative perturbation applied to each parameter (+10% default).
    parameters:
        Subset of :data:`PARAMETERS` to analyze.
    jobs:
        Worker processes for the evaluations (1 = serial).
    cache:
        Optional content-addressed result cache.
    engine:
        Lifetime engine for every evaluation.
    policy:
        Supervision policy (timeouts, retries, crash isolation).
    checkpoint:
        Optional resume checkpoint (or journal path).
    paranoia / shadow_sample:
        State-integrity verification knobs applied to every evaluation
        (see :mod:`repro.verify`); results are bit-identical across
        levels.
    """
    require_fraction(relative_step, "relative_step", inclusive=False)
    config = config if config is not None else ExperimentConfig()
    unknown = set(parameters) - set(PARAMETERS)
    if unknown:
        raise ValueError(f"unknown parameters {sorted(unknown)}; choose from {PARAMETERS}")

    perturbations: List[Tuple[str, float, float]] = []
    for parameter in parameters:
        base_value = float(getattr(config, parameter))
        perturbed_value = base_value * (1.0 + relative_step)
        if parameter in ("spare_fraction", "swr_fraction"):
            perturbed_value = min(perturbed_value, 1.0 if parameter == "swr_fraction" else 0.99)
        perturbations.append((parameter, base_value, perturbed_value))

    tasks = [_task(config, engine, "base", paranoia, shadow_sample)] + [
        _task(
            config.with_(**{parameter: perturbed_value}),
            engine,
            f"{parameter}+{relative_step:.0%}",
            paranoia,
            shadow_sample,
        )
        for parameter, _, perturbed_value in perturbations
    ]
    runner = SimRunner(
        jobs=jobs, cache=cache, policy=policy, checkpoint=checkpoint,
        metrics=metrics, backend=backend,
    )
    results = runner.run(tasks)
    base_lifetime = results[0].normalized_lifetime

    report: Dict[str, Sensitivity] = {}
    for (parameter, base_value, perturbed_value), result in zip(
        perturbations, results[1:]
    ):
        report[parameter] = Sensitivity(
            parameter=parameter,
            base_value=base_value,
            base_lifetime=base_lifetime,
            perturbed_value=perturbed_value,
            perturbed_lifetime=result.normalized_lifetime,
        )
    return report
