"""Local sensitivity analysis of the lifetime to the design parameters.

Which knob matters most around an operating point?  For each parameter
``θ`` of the evaluation configuration, :func:`sensitivity_analysis`
perturbs it by a relative step and reports the lifetime **elasticity**

```
E_θ = (ΔL / L) / (Δθ / θ)
```

-- the percent change in normalized lifetime per percent change in the
parameter.  At the paper's operating point (p = 10%, q_swr = 90%,
q = 50) this quantifies Section 5.2's qualitative reasoning: lifetime is
strongly elastic in the spare fraction, weakly (and negatively) in the
variation degree, and nearly inelastic in the SWR share -- which is why
the paper can trade the SWR share for mapping-table savings so cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.util.validation import require_fraction

#: Parameters the analysis can perturb.
PARAMETERS = ("spare_fraction", "swr_fraction", "q")


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of the lifetime with respect to one parameter.

    Attributes
    ----------
    parameter:
        The perturbed configuration field.
    base_value / base_lifetime:
        The operating point.
    perturbed_value / perturbed_lifetime:
        The evaluated neighbour.
    elasticity:
        Relative lifetime change per relative parameter change.
    """

    parameter: str
    base_value: float
    base_lifetime: float
    perturbed_value: float
    perturbed_lifetime: float

    @property
    def elasticity(self) -> float:
        relative_dl = (self.perturbed_lifetime - self.base_lifetime) / self.base_lifetime
        relative_dtheta = (self.perturbed_value - self.base_value) / self.base_value
        return relative_dl / relative_dtheta


def _lifetime(config: ExperimentConfig) -> float:
    result = simulate_lifetime(
        config.make_emap(),
        UniformAddressAttack(),
        MaxWE(config.spare_fraction, config.swr_fraction),
        rng=config.seed,
    )
    return result.normalized_lifetime


def sensitivity_analysis(
    config: ExperimentConfig | None = None,
    *,
    relative_step: float = 0.1,
    parameters: Tuple[str, ...] = PARAMETERS,
) -> Dict[str, Sensitivity]:
    """Elasticities of Max-WE's UAA lifetime around a configuration.

    Parameters
    ----------
    config:
        Operating point; defaults to the paper's.
    relative_step:
        Relative perturbation applied to each parameter (+10% default).
    parameters:
        Subset of :data:`PARAMETERS` to analyze.
    """
    require_fraction(relative_step, "relative_step", inclusive=False)
    config = config if config is not None else ExperimentConfig()
    unknown = set(parameters) - set(PARAMETERS)
    if unknown:
        raise ValueError(f"unknown parameters {sorted(unknown)}; choose from {PARAMETERS}")

    base_lifetime = _lifetime(config)
    report: Dict[str, Sensitivity] = {}
    for parameter in parameters:
        base_value = float(getattr(config, parameter))
        perturbed_value = base_value * (1.0 + relative_step)
        if parameter in ("spare_fraction", "swr_fraction"):
            perturbed_value = min(perturbed_value, 1.0 if parameter == "swr_fraction" else 0.99)
        perturbed = config.with_(**{parameter: perturbed_value})
        report[parameter] = Sensitivity(
            parameter=parameter,
            base_value=base_value,
            base_lifetime=base_lifetime,
            perturbed_value=perturbed_value,
            perturbed_lifetime=_lifetime(perturbed),
        )
    return report
