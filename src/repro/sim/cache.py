"""Content-addressed disk cache for simulation results.

A lifetime simulation is a pure function of its declarative task spec
(device configuration + attack/sparing/wear-leveling names + parameters
+ seed), so its result can be cached under a stable content hash and
reused by any later run of the same spec -- re-running a benchmark or
sweep with unchanged parameters then performs zero simulations.

Keys are a SHA-256 over the canonical JSON of the task's
``cache_payload()`` plus :data:`CACHE_SCHEMA_VERSION`; bumping the
version invalidates every previously stored entry (used whenever the
engine's numerics change).  Entries live as small JSON files under
``.repro-cache/<kk>/<key>.json`` (``kk`` = first two hex digits), which
keeps directories small and makes the cache trivially inspectable and
garbage-collectable with ordinary shell tools.

Cached results omit the failure timeline (it can hold 100k events); all
scalar outputs -- ``normalized_lifetime``, ``writes_served``, death and
replacement counts, metadata -- round-trip exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional, Protocol

from repro.obs.metrics import MetricsRegistry, maybe_span
from repro.sim.result import SimulationResult

#: Bump to invalidate every previously cached result (schema or engine
#: numerics change).  v4: the ``fluid-ensemble`` engine landed and task
#: payloads grew an engine namespace that older readers would misparse,
#: so v3 entries must read as plain misses (never quarantined -- they
#: are valid entries of an old key space, not corrupt bytes).
CACHE_SCHEMA_VERSION: int = 4

#: Default cache directory (overridable via the ``REPRO_CACHE_DIR``
#: environment variable or the ``root`` constructor argument).
DEFAULT_CACHE_DIR: str = ".repro-cache"

#: Subdirectory (under the cache root) that corrupt entries are moved to.
QUARANTINE_DIR: str = "quarantine"

#: Most quarantined entries kept on disk; when a new quarantine pushes
#: the directory past this bound the oldest entries are evicted
#: (deleted).  Quarantine exists for *debugging recent corruption*, not
#: archival -- unbounded growth turned every corrupt-entry storm into a
#: slow disk leak.  Override per instance via ``quarantine_cap`` or
#: globally via the ``REPRO_QUARANTINE_CAP`` environment variable.
DEFAULT_QUARANTINE_CAP: int = 32


def _resolve_cap(value: "int | None", env_var: str, default: int) -> int:
    """An explicit cap wins; else the environment; else the default."""
    if value is None:
        env = os.environ.get(env_var)
        value = int(env) if env else default
    value = int(value)
    if value < 1:
        raise ValueError(f"cap must be >= 1, got {value}")
    return value


def prune_oldest(
    paths: "list[Path]", cap: int, remove: "Callable[[Path], None]"
) -> int:
    """Delete the oldest of ``paths`` until at most ``cap`` remain.

    Age is the file's mtime (name as a deterministic tie-break);
    removal failures are swallowed -- a bounded directory is a hygiene
    guarantee, never worth failing the lookup that triggered it.
    Returns the number of entries actually removed.  Shared by the
    cache quarantine and the crash-bundle store.
    """
    if len(paths) <= cap:
        return 0

    def _age(path: Path) -> "tuple[float, str]":
        try:
            return (path.stat().st_mtime, path.name)
        except OSError:
            return (0.0, path.name)

    evicted = 0
    for path in sorted(paths, key=_age)[: len(paths) - cap]:
        try:
            remove(path)
            evicted += 1
        except OSError:
            continue
    return evicted


class Cacheable(Protocol):
    """Anything keyable by the cache: exposes a canonical payload."""

    def cache_payload(self) -> Mapping[str, object]:
        """JSON-serializable mapping that fully determines the result."""
        ...


def canonical_json(payload: Mapping[str, object]) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def task_key(task: Cacheable, schema_version: int = CACHE_SCHEMA_VERSION) -> str:
    """Stable SHA-256 content key for a task spec."""
    document = canonical_json(
        {"schema": schema_version, "task": dict(task.cache_payload())}
    )
    return hashlib.sha256(document.encode()).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int
    misses: int
    stores: int
    quarantined: int = 0
    quarantine_evicted: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return f"{self.hits} hits / {self.misses} misses ({self.hit_rate:.0%} hit rate)"


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` payloads.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro-cache`` under the current working directory.  Created
        lazily on first store.
    schema_version:
        Key-space version; entries written under a different version are
        invisible (treated as misses).
    """

    def __init__(
        self,
        root: "str | Path | None" = None,
        schema_version: int = CACHE_SCHEMA_VERSION,
        quarantine_cap: "int | None" = None,
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self._root = Path(root)
        self._schema_version = int(schema_version)
        self._quarantine_cap = _resolve_cap(
            quarantine_cap, "REPRO_QUARANTINE_CAP", DEFAULT_QUARANTINE_CAP
        )
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._quarantined = 0
        self._quarantine_evicted = 0
        self._metrics: Optional[MetricsRegistry] = None

    def attach_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        """Record ``cache/get``/``cache/put`` spans and hit/miss counters
        into ``metrics`` from now on (``None`` detaches)."""
        self._metrics = metrics

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        """Cache directory."""
        return self._root

    @property
    def schema_version(self) -> int:
        """Key-space version of this instance."""
        return self._schema_version

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/store counters accumulated by this instance."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            quarantined=self._quarantined,
            quarantine_evicted=self._quarantine_evicted,
        )

    @property
    def quarantine_cap(self) -> int:
        """Most quarantined entries kept before oldest-first eviction."""
        return self._quarantine_cap

    @property
    def quarantine_root(self) -> Path:
        """Directory corrupt entries are moved to."""
        return self._root / QUARANTINE_DIR

    def key(self, task: Cacheable) -> str:
        """Content key of ``task`` under this cache's schema version."""
        return task_key(task, self._schema_version)

    def path_for(self, task: Cacheable) -> Path:
        """On-disk location of ``task``'s entry (whether or not present)."""
        key = self.key(task)
        return self._root / key[:2] / f"{key}.json"

    def _entry_files(self):
        """Entry files on disk (excludes the quarantine directory)."""
        if not self._root.is_dir():
            return
        for subdir in self._root.iterdir():
            if subdir.is_dir() and subdir.name != QUARANTINE_DIR:
                yield from subdir.glob("*.json")

    def __len__(self) -> int:
        """Number of entries on disk (all schema versions)."""
        return sum(1 for _ in self._entry_files())

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, task: Cacheable) -> Optional[SimulationResult]:
        """Cached result of ``task``, or ``None`` (counted as hit/miss).

        Corrupt, truncated, or unparseable entries are treated as misses
        and moved to ``quarantine/`` (never raised, never silently
        deleted): the next store can rewrite the key while the bad bytes
        stay available for debugging whatever truncated them.
        """
        with maybe_span(self._metrics, "cache/get"):
            path = self.path_for(task)
            try:
                payload = json.loads(path.read_text())
                result = SimulationResult.from_dict(payload["result"])
            except FileNotFoundError:
                self._misses += 1
                if self._metrics is not None:
                    self._metrics.inc("cache.misses")
                return None
            except (OSError, ValueError, KeyError, TypeError):
                self._misses += 1
                self._quarantine(path)
                if self._metrics is not None:
                    self._metrics.inc("cache.misses")
                    self._metrics.inc("cache.quarantined")
                return None
            self._hits += 1
            if self._metrics is not None:
                self._metrics.inc("cache.hits")
            return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry under ``quarantine/`` (best effort).

        The quarantine is bounded: when this move pushes the directory
        past ``quarantine_cap`` the oldest entries are evicted, so a
        corrupt-entry storm (full disk truncating every store) can never
        grow the directory without bound.
        """
        try:
            destination = self.quarantine_root / path.name
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            self._quarantined += 1
        except OSError:
            # Quarantine must never make a miss worse; fall back to
            # removal so the next store is not blocked by the bad file.
            path.unlink(missing_ok=True)
            return
        evicted = prune_oldest(
            [entry for entry in self.quarantine_root.glob("*.json")
             if entry != destination],
            max(self._quarantine_cap - 1, 0),
            lambda entry: entry.unlink(),
        )
        if evicted:
            self._quarantine_evicted += evicted
            if self._metrics is not None:
                self._metrics.inc("cache.quarantine_evicted", evicted)

    def put(
        self,
        task: Cacheable,
        result: SimulationResult,
        elapsed: float = 0.0,
    ) -> Path:
        """Store ``result`` for ``task``; returns the entry's path.

        The entry records the task's payload alongside the result so a
        human (or a garbage collector) can tell what produced it, and the
        wall-time the simulation cost -- i.e. what a future hit saves.
        """
        with maybe_span(self._metrics, "cache/put"):
            path = self.path_for(task)
            path.parent.mkdir(parents=True, exist_ok=True)
            entry = {
                "schema": self._schema_version,
                "key": path.stem,
                "task": dict(task.cache_payload()),
                "elapsed_seconds": float(elapsed),
                "result": result.to_dict(include_timeline=False),
            }
            text = json.dumps(entry, indent=2, default=str)
            # Fault-injection hook: the corrupted-cache-entry campaign models
            # a full disk / torn write by storing a truncated entry, which a
            # later get() must quarantine and treat as a miss.
            from repro.sim.faults import active_injector

            injector = active_injector()
            if injector is not None and injector.corrupt_cache_entry(path.stem):
                text = text[: max(len(text) // 2, 1)]
            # Write-then-rename so concurrent readers never see a torn entry.
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(text)
            tmp.replace(path)
            self._stores += 1
            if self._metrics is not None:
                self._metrics.inc("cache.stores")
            return path

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for entry in self._entry_files():
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
