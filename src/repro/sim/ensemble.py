"""The trial-stacked ``fluid-ensemble`` lifetime engine.

``simulate_lifetime`` runs one device; a Monte-Carlo study runs hundreds
of statistically independent replicas whose per-run cost is dominated by
dispatch and initialization, not kernel math (see BENCH_engine.json).
This engine amortizes that overhead by advancing ``T`` trials through
one engine invocation:

* **Stacked scheme state** -- per-trial sparing bookkeeping lives in
  ``(trials, ...)`` tensors behind the
  :class:`~repro.sparing.base.BatchedSchemeState` protocol.  Eligible
  schemes (Max-WE in the paper configuration) build all ``T`` allocation
  plans with one batch of cross-trial array operations; everything else
  falls back to real per-trial instances
  (:class:`~repro.sparing.base.FallbackSchemeState`), which is always
  correct, just without the stacked-init speedup.
* **Shared spectral quantities** -- the wear-weight ``math.fsum`` and
  ``w_max`` are computed once per distinct weight vector and reused
  across trials (identical inputs give identical floats, so sharing is
  bit-safe).
* **Value-partition epoch selection** -- when a trial's scheme promises
  it never removes slots (:attr:`SpareScheme.ensemble_never_removes`)
  and every slot is wear-prone, each slot's death time stays finite
  until the trial's terminal failure.  The solo kernel's
  candidates/argpartition/trim/prefix pipeline then reduces to a value
  partition plus one comparison sweep (:func:`_fast_epoch`), selecting
  *exactly* the same epoch at a fraction of the cost.

Each trial's epoch loop is otherwise a line-for-line port of the solo
``fluid-batched`` kernel operating on that trial's row: same
``BATCH_LIMIT`` windows, same chronologically-safe prefix from a floor
fetched once before the loop, same truncation and accounting order.
Results therefore split back into per-trial
:class:`~repro.sim.result.SimulationResult` objects bit-identical to
solo ``fluid-batched`` runs of the same seeds (only ``metadata["engine"]``
differs), which the differential tests pin.

Trials that die early simply stop: advancement is per-trial over the
stacked state, so a trial failing in epoch 0 contributes no further
work.  Paranoia guards are supported through the fallback scheme state
(one :class:`~repro.verify.invariants.EngineGuard` per trial, views
tagged with the trial index); ``shadow_sample > 0`` delegates each
member to the solo engine so the audit machinery applies unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import PROFILE_UNIFORM, AttackModel
from repro.device.faults import FaultModel
from repro.endurance.emap import EnduranceMap
from repro.obs.metrics import MetricsRegistry, maybe_span
from repro.sim.faults import FaultInjector, active_injector, active_task_key
from repro.sim.result import SimulationResult, TimelineEvent
from repro.sparing.base import (
    BATCH_EXTEND,
    BATCH_FAIL,
    BATCH_REMOVE,
    BATCH_REPLACE,
    BatchedSchemeState,
    FallbackSchemeState,
    SpareScheme,
)
from repro.util.rng import RandomState, derive_rng
from repro.verify.invariants import EngineGuard, InvariantViolation, normalize_paranoia
from repro.verify.snapshot import write_violation_bundle
from repro.wearlevel.base import WearLeveler
from repro.wearlevel.none import NoWearLeveling

#: The engine name this module implements.
ENGINE_NAME = "fluid-ensemble"

#: Shared empty index array for the no-removal fast path.
_EMPTY_POSITIONS = np.empty(0, dtype=np.intp)


@dataclass
class EnsembleMember:
    """One trial of an ensemble: a full device/attack/defence combination.

    Components must be fresh per member (schemes and wear-levelers are
    stateful); ``rng`` is the member's master seed, forked exactly as the
    solo engine forks it.
    """

    emap: EnduranceMap
    attack: AttackModel
    sparing: SpareScheme
    wearleveler: Optional[WearLeveler] = None
    fault_model: Optional[FaultModel] = None
    rng: RandomState = None


def _fast_epoch_work(
    row: np.ndarray,
    floor: float,
    w_max: float,
    sentinel: float,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Work-set epoch selection on the candidate *row* itself.

    ``row`` holds the candidate slots' death times (in ascending-slot
    order) and the return value indexes into it: ``(positions, times)``
    sorted by ``(time, position)``.  Callers map positions to global
    slots -- or scatter through them directly when they keep the row as
    the live copy of the candidates' state.  Returns ``None`` when the
    work-set guarantee slipped (epoch bound at or above the smallest
    excluded time); see :func:`_fast_epoch` for the equivalence argument.
    """
    from repro.sim.lifetime import BATCH_LIMIT

    if math.isinf(floor):
        t_max = np.partition(row, BATCH_LIMIT - 1)[BATCH_LIMIT - 1]
        if not t_max < sentinel:
            return None
        pos = np.flatnonzero(row < t_max)
        if not pos.size:
            pos = np.flatnonzero(row == t_max)
    else:
        t_min = float(row.min())
        bound = t_min + floor / w_max
        if not bound <= sentinel:
            return None
        pos = np.flatnonzero(row < bound)
        if pos.size >= BATCH_LIMIT:
            t_max = np.partition(row, BATCH_LIMIT - 1)[BATCH_LIMIT - 1]
            if not t_max < sentinel:
                return None
            pos = np.flatnonzero(row < t_max)
            if not pos.size:
                pos = np.flatnonzero(row == t_max)
        elif not pos.size:
            if not t_min < sentinel:
                return None
            pos = np.flatnonzero(row == t_min)[:1]
    times = row[pos]
    # Death times tie heavily (lines of a region share one endurance), so
    # the one-shot stable sort beats a detect-ties-then-resort scheme.
    order = np.argsort(times, kind="stable")
    return pos[order], times[order]


def _fast_epoch(
    current_death: np.ndarray,
    floor: float,
    w_max: float,
    work: Optional[np.ndarray] = None,
    sentinel: float = math.inf,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Select one epoch assuming every slot is finite and wear-prone.

    Equivalent to the solo kernel's selection pipeline -- argpartition of
    the ``BATCH_LIMIT`` nearest deaths, trim to a complete time-prefix,
    sort by ``(time, slot)``, cut at the chronologically safe bound --
    but driven by death-time *values*:

    * With ``c`` = the number of times strictly below the safety bound,
      ``c < BATCH_LIMIT`` implies the bound is at or below the selection's
      max time, so the epoch is exactly ``{time < bound}`` and the
      partition is skipped entirely (the common case: epochs are much
      smaller than ``BATCH_LIMIT``).
    * Otherwise the ``BATCH_LIMIT``-th smallest value caps the epoch just
      as the solo trim does, with the same full-tie-class fallback.

    Epoch content only ever depends on time values (the solo trim makes
    it independent of argpartition tie-breaking), so this selection is
    bit-identical.  Returns ``(sel, times)`` sorted by ``(time, slot)``.

    ``work`` (with its ``sentinel``) restricts the scans to a candidate
    subset: an ascending array of slot ids guaranteed to hold the
    smallest death times, every excluded slot's time being >= sentinel
    (see the prefilter in :func:`_advance_trial`).  Selection criteria
    are strict ``<`` comparisons against bounds verified to sit at or
    below the sentinel, so the subset sees exactly the full row's epoch;
    when that verification fails (bound above the sentinel, an unbounded
    epoch, or a tie class touching the sentinel) the function returns
    ``None`` and the caller re-runs the selection on the full row.
    """
    from repro.sim.lifetime import BATCH_LIMIT

    if work is not None:
        epoch = _fast_epoch_work(current_death[work], floor, w_max, sentinel)
        if epoch is None:
            return None
        pos, times = epoch
        # ``work`` ascending keeps work[pos] in the ascending-slot order
        # the stable time sort of the helper relied on.
        return work[pos], times

    over = current_death.size > BATCH_LIMIT
    if math.isinf(floor):
        if over:
            t_max = np.partition(current_death, BATCH_LIMIT - 1)[BATCH_LIMIT - 1]
            sel = np.flatnonzero(current_death < t_max)
            if not sel.size:
                sel = np.flatnonzero(current_death == t_max)
        else:
            sel = np.arange(current_death.size, dtype=np.intp)
    else:
        bound = float(current_death.min()) + floor / w_max
        sel = np.flatnonzero(current_death < bound)
        if over and sel.size >= BATCH_LIMIT:
            t_max = np.partition(current_death, BATCH_LIMIT - 1)[BATCH_LIMIT - 1]
            sel = np.flatnonzero(current_death < t_max)
            if not sel.size:
                sel = np.flatnonzero(current_death == t_max)
        elif not sel.size:
            # Degenerate floor == 0.0: the solo prefix clamp
            # (max(prefix, 1)) keeps exactly the earliest death, ties
            # broken by slot id.
            sel = np.flatnonzero(current_death == current_death.min())[:1]
    times = current_death[sel]
    # flatnonzero/arange yield ascending slots, so a stable time sort
    # equals the solo kernel's lexsort((sel, times)).  Ties are common
    # (region-mates share an endurance), so sort stably outright.
    order = np.argsort(times, kind="stable")
    return sel[order], times[order]


def _delegate_with_shadow(
    member: EnsembleMember,
    *,
    record_timeline: bool,
    metrics: Optional[MetricsRegistry],
    paranoia: str,
    shadow_sample: float,
) -> SimulationResult:
    """Run one member on the solo engine so shadow audits apply unchanged."""
    from repro.sim.lifetime import simulate_lifetime

    result = simulate_lifetime(
        member.emap,
        member.attack,
        member.sparing,
        member.wearleveler,
        member.fault_model,
        member.rng,
        engine="fluid-batched",
        record_timeline=record_timeline,
        metrics=metrics,
        paranoia=paranoia,
        shadow_sample=shadow_sample,
    )
    metadata = dict(result.metadata)
    metadata["engine"] = ENGINE_NAME
    return SimulationResult(
        writes_served=result.writes_served,
        total_endurance=result.total_endurance,
        deaths=result.deaths,
        replacements=result.replacements,
        failure_reason=result.failure_reason,
        metadata=metadata,
        timeline=result.timeline,
    )


def simulate_ensemble(
    members: Sequence[EnsembleMember],
    *,
    record_timeline: bool = False,
    max_timeline_events: int = 100_000,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
) -> List[SimulationResult]:
    """Advance every member to device failure; one result per member.

    Results are index-aligned with ``members`` and bit-identical to solo
    ``fluid-batched`` runs of the same members (``metadata["engine"]``
    aside), independent of how members are grouped into ensembles.
    """
    if not members:
        raise ValueError("an ensemble needs at least one member")
    paranoia = normalize_paranoia(paranoia)
    shadow_sample = float(shadow_sample)
    if not 0.0 <= shadow_sample <= 1.0:
        raise ValueError(f"shadow_sample must be in [0, 1], got {shadow_sample!r}")
    if shadow_sample > 0.0:
        for member in members:
            if not isinstance(member.rng, (int, np.integer)):
                raise ValueError(
                    "shadow audits require integer rng seeds: the audit "
                    "re-executes each member from scratch, which a stateful "
                    "Generator (or None) cannot reproduce deterministically"
                )
        return [
            _delegate_with_shadow(
                member,
                record_timeline=record_timeline,
                metrics=metrics,
                paranoia=paranoia,
                shadow_sample=shadow_sample,
            )
            for member in members
        ]

    schemes = [member.sparing for member in members]
    emaps = [member.emap for member in members]
    with maybe_span(metrics, "sim/init"):
        # Stacked scheme state skips the RMT/LMT ledgers the guards
        # audit, so it is only eligible with paranoia off.
        state: Optional[BatchedSchemeState] = None
        if paranoia == "off":
            state = type(schemes[0]).make_batched_state(schemes, emaps)
        if state is None:
            for member in members:
                member.sparing.initialize(
                    member.emap, derive_rng(member.rng, "sparing")
                )
            state = FallbackSchemeState(schemes)

    injector = active_injector()
    corruptor: Optional[FaultInjector] = (
        injector
        if injector is not None and injector.spec.corrupt_state > 0.0
        else None
    )
    task_key = active_task_key() if corruptor is not None else ""

    # Distinct weight vectors are rare (one per attack/wear-level config),
    # so fsum and w_max are shared across trials with equal weights; a
    # short cache keeps the comparison cost linear for mixed ensembles.
    weight_cache: List[Tuple[np.ndarray, float, float]] = []
    # NoWearLeveling's uniform-profile distribution is a pure function of
    # the slot count (np.full(slots, 1/slots), eta 1, no rng use), so the
    # first such member's build serves every later member with the same
    # count -- skipping attach(), wear_weights() and the element-wise
    # weight-cache comparison entirely.  Keyed by slot count.
    uniform_cache: dict = {}
    from repro.sim.lifetime import accounting_tolerance

    results: List[SimulationResult] = []
    for index, member in enumerate(members):
        with maybe_span(metrics, "sim/init"):
            fault_model = (
                member.fault_model if member.fault_model is not None else FaultModel()
            )
            endurance = fault_model.effective_endurance(member.emap.line_endurance)
            total_endurance = float(endurance.sum())

            backing = state.backing(index)
            slots = backing.size
            min_user_slots = min(state.min_user_slots(index), slots)

            budgets = endurance[backing]
            if budgets.dtype != np.float64:
                budgets = budgets.astype(float)
            profile = member.attack.profile(slots)

            # Generator rngs are excluded from the cached path: a hit
            # would skip attach()'s derive_rng, which for a Generator
            # consumes parent state that later members observe.  Integer
            # seeds derive purely, so skipping the draw changes nothing.
            cache_eligible = (
                member.wearleveler is None
                and profile.kind == PROFILE_UNIFORM
                and not isinstance(member.rng, np.random.Generator)
            )
            w_scalar: Optional[float] = None
            cached_uniform = uniform_cache.get(slots) if cache_eligible else None
            if cached_uniform is not None:
                # attach() is skipped, so its endurance validation is kept.
                if not budgets.min() > 0:
                    raise ValueError("slot endurances must be strictly positive")
                weights, eta, active_weight, w_max, wl_desc = cached_uniform
                all_prone = True  # constant 1/slots weights
                w_scalar = float(weights[0])
            else:
                wl = (
                    member.wearleveler
                    if member.wearleveler is not None
                    else NoWearLeveling()
                )
                wl.attach(budgets, derive_rng(member.rng, "wearlevel"))
                distribution = wl.wear_weights(profile)
                weights = np.asarray(distribution.weights, dtype=float)
                if weights.size != slots:
                    raise ValueError(
                        f"wear-leveler produced {weights.size} weights "
                        f"for {slots} slots"
                    )
                eta = distribution.useful_fraction

                # With every slot wear-prone the masked assignment
                # collapses to one full divide -- both branches produce
                # the solo values exactly.  (``min() > 0`` is the
                # allocation-free spelling of ``(weights > 0).all()``;
                # weights are finite by contract.)
                all_prone = slots > 0 and bool(weights.min() > 0.0)

                active_weight = None
                w_max = 0.0
                for cached, cached_sum, cached_max in weight_cache:
                    if cached.shape == weights.shape and np.array_equal(
                        cached, weights
                    ):
                        active_weight, w_max = cached_sum, cached_max
                        break
                if active_weight is None:
                    active_weight = math.fsum(weights)
                    w_max = float(weights.max()) if weights.size else 0.0
                    if len(weight_cache) < 8:
                        weight_cache.append((weights, active_weight, w_max))
                wl_desc = wl.describe()
                if cache_eligible and all_prone:
                    uniform_cache[slots] = (
                        weights, eta, active_weight, w_max, wl_desc
                    )

            if all_prone:
                # Dividing by the scalar (when the weights are constant)
                # yields the same elementwise quotients bit for bit; on
                # the cached path nothing else holds ``budgets`` (attach
                # was skipped), so the divide reuses its buffer.
                if w_scalar is not None:
                    current_death = np.divide(budgets, w_scalar, out=budgets)
                else:
                    current_death = budgets / weights
            else:
                prone = weights > 0.0
                current_death = np.full(slots, math.inf)
                current_death[prone] = budgets[prone] / weights[prone]

            attack_desc = member.attack.describe()
            sparing_desc = state.describe(index)
            fault_desc = fault_model.describe()

            guard: Optional[EngineGuard] = None
            if paranoia != "off":
                scheme = state.scheme(index)
                assert scheme is not None  # guards force the fallback state
                guard = EngineGuard(
                    paranoia,
                    sparing=scheme,
                    endurance=endurance,
                    weights=weights,
                    eta=eta,
                    total_endurance=total_endurance,
                    tolerance=accounting_tolerance,
                    metrics=metrics,
                    repro={
                        "seed": repr(member.rng),
                        "engine": ENGINE_NAME,
                        "attack": attack_desc,
                        "sparing": sparing_desc,
                        "wearleveler": wl_desc,
                        "paranoia": paranoia,
                        "shadow_sample": shadow_sample,
                        "trial": index,
                    },
                )
                guard.start(backing)

            integrity_key = ""
            if corruptor is not None:
                identity = "|".join(
                    (attack_desc, sparing_desc, wl_desc, repr(member.rng), ENGINE_NAME)
                )
                integrity_key = (
                    f"{task_key}#trial={index}" if task_key else identity
                )

            # The fast selection needs every death time finite for the
            # trial's whole life: no removals (scheme promise), every
            # slot wear-prone, and no state corruption in flight.
            fast = (
                state.never_removes
                and corruptor is None
                and guard is None
                and slots > 0
                and all_prone
            )

        with maybe_span(metrics, "sim/kernel"):
            try:
                served, deaths, replacements, failure_reason, timeline, extra_meta = (
                    _advance_trial(
                        state,
                        index,
                        endurance=endurance,
                        backing=backing,
                        weights=weights,
                        eta=eta,
                        current_death=current_death,
                        min_user_slots=min_user_slots,
                        active_weight=active_weight,
                        w_max=w_max,
                        guard=guard,
                        corruptor=corruptor,
                        integrity_key=integrity_key,
                        total_endurance=total_endurance,
                        record_timeline=record_timeline,
                        max_timeline_events=max_timeline_events,
                        fast=fast,
                        w_scalar=w_scalar,
                        metrics=metrics,
                    )
                )
            except InvariantViolation as violation:
                write_violation_bundle(violation)
                raise

        if metrics is not None:
            metrics.inc("sim.runs")
            metrics.inc("sim.deaths", deaths)
            metrics.inc("sim.replacements", replacements)
            for name, value in extra_meta.items():
                metrics.inc(f"sim.{name}", value)
            metrics.observe("sim.deaths_per_run", deaths)

        metadata = {
            "attack": attack_desc,
            "wearleveler": wl_desc,
            "sparing": sparing_desc,
            "fault_model": fault_desc,
            "slots": slots,
            "engine": ENGINE_NAME,
            **extra_meta,
        }
        results.append(
            SimulationResult(
                writes_served=served,
                total_endurance=total_endurance,
                deaths=deaths,
                replacements=replacements,
                failure_reason=failure_reason,
                metadata=metadata,
                timeline=tuple(timeline),
            )
        )
    if metrics is not None:
        metrics.inc("sim.ensembles")
    return results

def _advance_trial(
    state: BatchedSchemeState,
    trial: int,
    *,
    endurance: np.ndarray,
    backing: np.ndarray,
    weights: np.ndarray,
    eta: float,
    current_death: np.ndarray,
    min_user_slots: int,
    active_weight: float,
    w_max: float,
    guard: Optional[EngineGuard],
    corruptor: Optional[FaultInjector],
    integrity_key: str,
    total_endurance: float,
    record_timeline: bool,
    max_timeline_events: int,
    fast: bool,
    w_scalar: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[float, int, int, str, List[TimelineEvent], dict]:
    """Advance one trial to device failure (solo epoch-kernel port).

    Identical structure to the solo ``fluid-batched`` loop: the floor is
    fetched once before the loop and never refreshed, epochs are cut and
    truncated the same way, and every accounting expression keeps the
    solo evaluation order, so death/replacement counts and the served
    integral match bit for bit.  ``fast`` switches only the epoch
    *selection* to :func:`_fast_epoch` (proven equivalent).  ``w_scalar``
    may be set when every entry of ``weights`` equals it; scalar
    divisions then replace the elementwise gathers bit-identically.

    The trial also runs the solo kernel's adaptive regime switch: after
    :data:`~repro.sim.lifetime.SEQUENTIAL_ENTER_STREAK` consecutive
    one-death epochs, selection moves to a
    :class:`~repro.sim.frontier.DeathFrontier` over the compact work row
    (or the full row) and back the moment an epoch cannot be proven
    identical to the vectorized selection.  Epoch *content* is identical
    in either regime, so results stay bit-identical to solo runs; only
    the regime counters in the returned extra metadata may differ from
    the solo kernel's (the index's work-set geometry differs).
    """
    from repro.sim.frontier import DeathFrontier
    from repro.sim.lifetime import (
        BATCH_LIMIT,
        FRONTIER_LIMIT,
        SEQUENTIAL_ENTER_STREAK,
        SEQUENTIAL_EPOCH_CAP,
        _ACTION_NAMES,
        _DEGENERATE_REASON,
        _EXHAUSTED_REASON,
        _apply_state_corruption,
    )

    served = 0.0
    v_now = 0.0
    deaths = 0
    rounds = 0
    replacements = 0
    epochs = 0
    live_count = backing.size
    failure_reason = _DEGENERATE_REASON
    timeline: List[TimelineEvent] = []
    floor = state.replacement_extra_floor(trial)
    # Tightened safe-prefix bound (solo-kernel mirror): the largest
    # weight among still-prone slots, recomputed lazily when the last
    # prone slot at the current maximum is removed.  Identical update
    # points to the solo kernel keep epoch grouping bit-identical.
    w_max_active = w_max
    w_max_live = -1
    frontier: Optional[DeathFrontier] = None
    frontier_on_work = False
    sequential_ok = guard is None and corruptor is None
    size1_streak = 0
    sequential_rounds = 0
    regime_switches = 0
    full_scans = 0

    # Candidate prefilter (fast path only).  A replacement's new death
    # time always lands at or above the epoch bound that selected it --
    # that is exactly why epoch grouping is chronologically safe -- so
    # with at most ``capacity`` replacements ever granted and at most
    # ``BATCH_LIMIT`` slots selected per epoch, every epoch draws from
    # the ``capacity + BATCH_LIMIT`` smallest initial death times.
    # Restricting the per-epoch scans to that work-set is exact while
    # each epoch's bound stays at or below the smallest excluded time
    # (``_fast_epoch`` checks, and the trial falls back to full-row
    # scans if the guarantee ever slips).
    work: Optional[np.ndarray] = None
    work_sentinel = math.inf
    # Compact mode: with a work-set in place and nobody auditing the full
    # arrays mid-loop, the candidates' death times, backing lines and
    # weights are copied into dense rows that fit the cache, every
    # per-epoch scan and scatter runs on those rows (same float values,
    # compact layout, so decisions and accounting are unchanged), and the
    # rows are scattered back into the full arrays when the trial ends or
    # falls back to full-row scans.
    cd_work: Optional[np.ndarray] = None
    bk_work: Optional[np.ndarray] = None
    w_work: Optional[np.ndarray] = None
    if fast:
        capacity = state.replacement_capacity(trial)
        if capacity is not None:
            limit = int(capacity) + BATCH_LIMIT + 1
            if limit < current_death.size:
                # Value-partition: every slot strictly below the
                # (limit+1)-th smallest death time, ascending (and so
                # already sorted), every excluded time >= the sentinel.
                # Ties at the threshold land outside the set, so require
                # enough candidates for the in-set partitions.
                threshold = float(np.partition(current_death, limit)[limit])
                candidates = np.flatnonzero(current_death < threshold)
                if candidates.size > BATCH_LIMIT:
                    work = candidates
                    work_sentinel = threshold
                    if guard is None and corruptor is None:
                        cd_work = current_death[work]
                        bk_work = backing[work]
                        if w_scalar is None:
                            w_work = weights[work]

    def view():
        assert guard is not None
        return guard.make_view(
            served=served,
            v_now=v_now,
            deaths=deaths,
            backing=backing,
            current_death=current_death,
            trial=trial,
        )

    while True:
        rounds += 1
        if corruptor is not None:
            kind = corruptor.corrupt_state(integrity_key, rounds)
            if kind is not None:
                served = _apply_state_corruption(
                    kind, served, backing, current_death, total_endurance
                )
        if guard is not None:
            guard.on_round(view)

        pos = None
        sel = None
        if frontier is not None:
            # Sequential micro-loop: pop the epoch off the index (over
            # the compact work row in compact mode, positions doubling as
            # slot order because ``work`` is ascending) and fall back the
            # moment equivalence to the vectorized selection is unproven.
            picked = frontier.pop_epoch(
                floor,
                w_max_active,
                min(SEQUENTIAL_EPOCH_CAP, BATCH_LIMIT - 1),
                ceiling=work_sentinel if frontier_on_work else math.inf,
            )
            if picked is None:
                frontier = None
                size1_streak = 0
                regime_switches += 1
            elif not picked[0]:
                if deaths > 0:
                    failure_reason = _EXHAUSTED_REASON
                break
            else:
                sequential_rounds += 1
                times = np.asarray(picked[1], dtype=float)
                if frontier_on_work:
                    pos = np.asarray(picked[0], dtype=np.intp)
                    sel = work[pos]
                else:
                    sel = np.asarray(picked[0], dtype=np.intp)
        if sel is None:
            full_scans += 1
            if fast:
                epoch = None
                if work is not None:
                    if cd_work is not None:
                        found = _fast_epoch_work(
                            cd_work, floor, w_max_active, work_sentinel
                        )
                        if found is not None:
                            pos, times = found
                            epoch = (work[pos], times)
                    else:
                        epoch = _fast_epoch(
                            current_death, floor, w_max_active, work, work_sentinel
                        )
                    if epoch is None:
                        # Guarantee slipped: full rows from here on.
                        if cd_work is not None:
                            current_death[work] = cd_work
                            backing[work] = bk_work
                            cd_work = bk_work = w_work = None
                        work = None
                if epoch is None:
                    epoch = _fast_epoch(current_death, floor, w_max_active)
                sel, times = epoch
            else:
                candidates = np.flatnonzero(np.isfinite(current_death))
                if candidates.size == 0:
                    if deaths > 0:
                        failure_reason = _EXHAUSTED_REASON
                    break
                if candidates.size > BATCH_LIMIT:
                    nearest = np.argpartition(
                        current_death[candidates], BATCH_LIMIT - 1
                    )[:BATCH_LIMIT]
                    sel = candidates[nearest]
                    times = current_death[sel]
                    t_max = times.max()
                    strictly_before = times < t_max
                    if strictly_before.any():
                        sel = sel[strictly_before]
                        times = times[strictly_before]
                    else:
                        sel = candidates[current_death[candidates] == t_max]
                        times = current_death[sel]
                else:
                    sel = candidates
                    times = current_death[sel]
                order = np.lexsort((sel, times))
                sel = sel[order]
                times = times[order]
                if floor is None:
                    prefix = 1
                elif math.isinf(floor):
                    prefix = sel.size
                else:
                    bound = times[0] + floor / w_max_active
                    prefix = max(
                        int(np.searchsorted(times, bound, side="left")), 1
                    )
                sel = sel[:prefix]
                times = times[:prefix]
        epochs += 1

        # Fancy index: a copy, safe to keep.  In compact mode the backing
        # row is the live copy, so read it there.
        dead_lines = bk_work[pos] if pos is not None else backing[sel]
        actions, out_lines, out_wear, fail_reason = state.replace_batch(
            trial, sel, dead_lines
        )
        count = int(actions.size)

        # never_removes schemes cannot emit BATCH_REMOVE, so the scan
        # for removals is skipped outright on the fast path.
        if fast:
            removal_positions = _EMPTY_POSITIONS
        else:
            removal_positions = np.flatnonzero(actions == BATCH_REMOVE)
        allowed_removals = live_count - min_user_slots
        if removal_positions.size > allowed_removals:
            count = int(removal_positions[allowed_removals]) + 1
            actions = actions[:count]
            removal_positions = removal_positions[: allowed_removals + 1]
            fail_reason = None  # capacity failure preempts a later one
            capacity_failed = True
        else:
            capacity_failed = False
        sel = sel[:count]
        times = times[:count]
        dead_lines = dead_lines[:count]
        if pos is not None:
            pos = pos[:count]
        lines = out_lines[:count]
        wear = out_wear[:count]
        deaths += count
        if guard is not None:
            guard.record_batch(sel, dead_lines, actions, lines, wear)

        # Served-writes integral; with no removals the per-segment active
        # weight is constant, and `active_weight - 0.0` is exact, so the
        # scalar product keeps the solo elementwise rounding.  The manual
        # difference is the same subtractions ``np.diff(..., prepend=)``
        # performs, minus its concatenate.
        dv = np.empty(count)
        dv[0] = times[0] - v_now
        if count > 1:
            np.subtract(times[1:], times[:-1], out=dv[1:])
        if removal_positions.size:
            removed_w = np.zeros(count)
            removed_w[removal_positions] = weights[sel[removal_positions]]
            drained = np.cumsum(removed_w)
            seg_active = active_weight - (drained - removed_w)
            increments = dv * seg_active * eta
        else:
            increments = dv * active_weight * eta
        served_at = served + np.cumsum(increments)
        served = float(served_at[-1])
        v_now = float(times[-1])
        if removal_positions.size:
            active_weight -= float(drained[-1])

        rep = np.flatnonzero(actions == BATCH_REPLACE)
        if rep.size:
            replacements += int(rep.size)
            if rep.size == count:
                # All-replace epoch (the Max-WE steady state): the gather
                # by ``rep`` is the identity, so skip it.
                rep_slots, rep_lines, rep_times = sel, lines, times
                rep_pos = pos
            else:
                rep_slots = sel[rep]
                rep_lines = lines[rep]
                rep_times = times[rep]
                rep_pos = pos[rep] if pos is not None else None
            # Constant weight vectors divide by the scalar instead: the
            # elementwise quotients are bit-identical and the 472 KB
            # weights row stays untouched.
            if rep_pos is not None:
                bk_work[rep_pos] = rep_lines
                divisor = w_work[rep_pos] if w_scalar is None else w_scalar
                rep_deaths = rep_times + endurance[rep_lines] / divisor
                cd_work[rep_pos] = rep_deaths
                if frontier is not None:
                    for key, death in zip(
                        rep_pos.tolist(), rep_deaths.tolist()
                    ):
                        frontier.push(key, death)
            else:
                backing[rep_slots] = rep_lines
                divisor = weights[rep_slots] if w_scalar is None else w_scalar
                rep_deaths = rep_times + endurance[rep_lines] / divisor
                current_death[rep_slots] = rep_deaths
                if frontier is not None:
                    for key, death in zip(
                        rep_slots.tolist(), rep_deaths.tolist()
                    ):
                        frontier.push(key, death)
        ext = np.flatnonzero(actions == BATCH_EXTEND)
        if ext.size:
            replacements += int(ext.size)
            if pos is not None:
                ext_pos = pos[ext]
                ext_divisor = w_work[ext_pos] if w_scalar is None else w_scalar
                ext_deaths = times[ext] + wear[ext] / ext_divisor
                cd_work[ext_pos] = ext_deaths
                if frontier is not None:
                    for key, death in zip(
                        ext_pos.tolist(), ext_deaths.tolist()
                    ):
                        frontier.push(key, death)
            else:
                ext_slots = sel[ext]
                ext_divisor = (
                    weights[ext_slots] if w_scalar is None else w_scalar
                )
                ext_deaths = times[ext] + wear[ext] / ext_divisor
                current_death[ext_slots] = ext_deaths
                if frontier is not None:
                    for key, death in zip(
                        ext_slots.tolist(), ext_deaths.tolist()
                    ):
                        frontier.push(key, death)
        if removal_positions.size:
            removed_slots = sel[removal_positions]
            current_death[removed_slots] = math.inf
            live_count -= int(removal_positions.size)
            if floor is not None and not math.isinf(floor):
                # Solo-kernel mirror: identical w_max_active updates keep
                # epoch grouping bit-identical to solo fluid-batched.
                dead_w = weights[removed_slots]
                if np.any(dead_w == w_max_active):
                    if w_max_live < 0:
                        w_max_live = int(
                            np.count_nonzero(
                                weights[np.isfinite(current_death)]
                                == w_max_active
                            )
                        )
                    else:
                        w_max_live -= int(
                            np.count_nonzero(dead_w == w_max_active)
                        )
                    if w_max_live == 0:
                        survivors = weights[np.isfinite(current_death)]
                        if survivors.size:
                            w_max_active = float(survivors.max())
                            w_max_live = int(
                                np.count_nonzero(survivors == w_max_active)
                            )
        if fail_reason is not None:
            if pos is not None:
                cd_work[pos[count - 1]] = math.inf
            else:
                current_death[sel[count - 1]] = math.inf

        if record_timeline and len(timeline) < max_timeline_events:
            room = max_timeline_events - len(timeline)
            for k in range(min(count, room)):
                action = int(actions[k])
                timeline.append(
                    TimelineEvent(
                        writes_served=float(served_at[k]),
                        slot=int(sel[k]),
                        dead_line=int(dead_lines[k]),
                        action=_ACTION_NAMES[action],
                        replacement_line=int(lines[k])
                        if action == BATCH_REPLACE
                        else None,
                    )
                )

        if metrics is not None:
            metrics.observe("sim.epoch_size", count)
        if capacity_failed:
            failure_reason = (
                f"capacity degraded below user capacity "
                f"({live_count} < {min_user_slots} slots)"
            )
            break
        if fail_reason is not None:
            failure_reason = fail_reason
            break
        if frontier is None and sequential_ok:
            if count == 1:
                size1_streak += 1
                if size1_streak >= SEQUENTIAL_ENTER_STREAK and BATCH_LIMIT > 1:
                    target = cd_work if cd_work is not None else current_death
                    candidate = DeathFrontier(target, limit=FRONTIER_LIMIT)
                    if candidate.degenerate:
                        # A minimum tie class wider than the work set can
                        # only keep degenerating; stay vectorized.
                        sequential_ok = False
                    else:
                        frontier = candidate
                        frontier_on_work = cd_work is not None
                        size1_streak = 0
                        regime_switches += 1
            else:
                size1_streak = 0

    if cd_work is not None:
        # Publish the compact rows so post-trial consumers of the full
        # arrays observe exactly the values the loop computed.
        current_death[work] = cd_work
        backing[work] = bk_work
    if guard is not None:
        guard.final_check(view)
    extra_meta = {
        "epochs": epochs,
        "sequential_rounds": sequential_rounds,
        "regime_switches": regime_switches,
        "full_scans": full_scans,
    }
    return served, deaths, replacements, failure_reason, timeline, extra_meta
