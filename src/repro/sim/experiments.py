"""The paper's evaluation experiments as reusable sweep drivers.

Each function reproduces one figure/table of Section 5:

* :func:`spare_fraction_sweep` -- Figure 6: Max-WE lifetime under UAA
  versus the spare-capacity percentage;
* :func:`swr_fraction_sweep` -- Figure 7: lifetime under BPA versus the
  SWR share of the spare space, per wear-leveling scheme;
* :func:`bpa_scheme_comparison` -- Figure 8: Max-WE vs PCD/PS vs PS-worst
  under BPA across wear-leveling schemes (plus the geometric mean);
* :func:`uaa_scheme_comparison` -- Section 5.3.1's UAA numbers:
  no-protection, Max-WE, PCD/PS, PS-worst at 10% spares.

All drivers return plain data structures (lists/dicts of
:class:`~repro.sim.result.SimulationResult`) so benchmarks, examples and
tests can format them however they need.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sim.result import SimulationResult
from repro.sparing.base import SpareScheme
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.wearlevel import make_scheme
from repro.wearlevel.base import WearLeveler

#: Figure 6's x-axis: spare capacity as a percentage of total capacity.
FIG6_SPARE_FRACTIONS: Tuple[float, ...] = (0.0, 0.01, 0.1, 0.2, 0.3, 0.4, 0.5)

#: Figure 7's x-axis: SWR capacity as a percentage of the spare capacity.
FIG7_SWR_FRACTIONS: Tuple[float, ...] = (0.0, 0.2, 0.6, 0.8, 0.9, 1.0)

#: Figure 7/8's wear-leveling baselines, in paper order.
EVALUATED_WEAR_LEVELERS: Tuple[str, ...] = ("tlsr", "pcm-s", "bwl", "wawl")

#: Sparing-scheme factories for the comparison figures, in paper order.
SPARING_FACTORIES: Dict[str, Callable[[float, float], SpareScheme]] = {
    "ps-worst": lambda p, q: PS.worst_case(p),
    "pcd-ps": lambda p, q: PCD(p),
    "max-we": lambda p, q: MaxWE(p, q),
}


def _make_wl(name: str) -> WearLeveler:
    """Fluid-mode wear-leveler instance (line-granularity mapping)."""
    return make_scheme(name, lines_per_region=1) if name != "none" else make_scheme(name)


def spare_fraction_sweep(
    config: ExperimentConfig | None = None,
    fractions: Sequence[float] = FIG6_SPARE_FRACTIONS,
) -> List[Tuple[float, SimulationResult]]:
    """Figure 6: Max-WE under UAA across spare-capacity percentages.

    The paper notes lifetime under UAA is independent of the wear-leveling
    scheme (uniform traffic is permutation-invariant), so no wear-leveler
    is varied here.  A zero fraction degenerates to the unprotected device.
    """
    config = config if config is not None else ExperimentConfig()
    emap = config.make_emap()
    results: List[Tuple[float, SimulationResult]] = []
    for fraction in fractions:
        sparing: SpareScheme
        if fraction == 0.0:
            sparing = NoSparing()
        else:
            sparing = MaxWE(fraction, config.swr_fraction)
        result = simulate_lifetime(
            emap, UniformAddressAttack(), sparing, rng=config.seed
        )
        results.append((fraction, result))
    return results


def swr_fraction_sweep(
    config: ExperimentConfig | None = None,
    swr_fractions: Sequence[float] = FIG7_SWR_FRACTIONS,
    wearlevelers: Sequence[str] = EVALUATED_WEAR_LEVELERS,
) -> Dict[str, List[Tuple[float, SimulationResult]]]:
    """Figure 7: Max-WE under BPA across SWR shares, per wear-leveler."""
    config = config if config is not None else ExperimentConfig()
    emap = config.make_emap()
    sweeps: Dict[str, List[Tuple[float, SimulationResult]]] = {}
    for wl_name in wearlevelers:
        series: List[Tuple[float, SimulationResult]] = []
        for swr_fraction in swr_fractions:
            result = simulate_lifetime(
                emap,
                BirthdayParadoxAttack(),
                MaxWE(config.spare_fraction, swr_fraction),
                wearleveler=_make_wl(wl_name),
                rng=config.seed,
            )
            series.append((swr_fraction, result))
        sweeps[wl_name] = series
    return sweeps


def bpa_scheme_comparison(
    config: ExperimentConfig | None = None,
    wearlevelers: Sequence[str] = EVALUATED_WEAR_LEVELERS,
    sparing_names: Sequence[str] = ("ps-worst", "pcd-ps", "max-we"),
) -> Dict[str, Dict[str, SimulationResult]]:
    """Figure 8: sparing schemes under BPA across wear-levelers.

    Returns ``{sparing_name: {wl_name: result}}``; apply
    :func:`repro.util.stats.geometric_mean` over each inner dict's
    normalized lifetimes for the paper's Gmean bars.
    """
    config = config if config is not None else ExperimentConfig()
    emap = config.make_emap()
    comparison: Dict[str, Dict[str, SimulationResult]] = {}
    for sparing_name in sparing_names:
        factory = SPARING_FACTORIES[sparing_name]
        row: Dict[str, SimulationResult] = {}
        for wl_name in wearlevelers:
            result = simulate_lifetime(
                emap,
                BirthdayParadoxAttack(),
                factory(config.spare_fraction, config.swr_fraction),
                wearleveler=_make_wl(wl_name),
                rng=config.seed,
            )
            row[wl_name] = result
        comparison[sparing_name] = row
    return comparison


def uaa_scheme_comparison(
    config: ExperimentConfig | None = None,
) -> Dict[str, SimulationResult]:
    """Section 5.3.1: UAA lifetimes at 10% spares for all sparing schemes.

    Returns results for ``no-protection``, ``ps-worst``, ``pcd-ps`` and
    ``max-we``; the paper reports 4.1%, 28.5%, 30.6% and 43.1% of the
    ideal lifetime respectively (9.5X / 7.4X / 6.9X improvements).
    """
    config = config if config is not None else ExperimentConfig()
    emap = config.make_emap()
    attack = UniformAddressAttack()
    schemes: Dict[str, SpareScheme] = {
        "no-protection": NoSparing(),
        "ps-worst": PS.worst_case(config.spare_fraction),
        "pcd-ps": PCD(config.spare_fraction),
        "max-we": MaxWE(config.spare_fraction, config.swr_fraction),
    }
    return {
        name: simulate_lifetime(emap, attack, scheme, rng=config.seed)
        for name, scheme in schemes.items()
    }
