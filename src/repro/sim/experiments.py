"""The paper's evaluation experiments as reusable sweep drivers.

Each function reproduces one figure/table of Section 5:

* :func:`spare_fraction_sweep` -- Figure 6: Max-WE lifetime under UAA
  versus the spare-capacity percentage;
* :func:`swr_fraction_sweep` -- Figure 7: lifetime under BPA versus the
  SWR share of the spare space, per wear-leveling scheme;
* :func:`bpa_scheme_comparison` -- Figure 8: Max-WE vs PCD/PS vs PS-worst
  under BPA across wear-leveling schemes (plus the geometric mean);
* :func:`uaa_scheme_comparison` -- Section 5.3.1's UAA numbers:
  no-protection, Max-WE, PCD/PS, PS-worst at 10% spares.

All drivers return plain data structures (lists/dicts of
:class:`~repro.sim.result.SimulationResult`) so benchmarks, examples and
tests can format them however they need.

Every driver expresses its runs as declarative
:class:`~repro.sim.runner.SimTask` specs and executes them through one
:class:`~repro.sim.runner.SimRunner`, so all sweeps accept ``jobs``
(process-parallel fan-out; results are bit-identical to serial),
``cache`` (content-addressed result reuse across reruns), ``policy``
(supervision: per-task timeouts, bounded retries, crash isolation --
see :class:`~repro.sim.resilience.ResiliencePolicy`), and
``checkpoint`` (append-only completed-result journal so an interrupted
sweep resumes without re-simulating finished points), and the
state-integrity knobs ``paranoia`` / ``shadow_sample`` (see
:mod:`repro.verify`; verification never changes results).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.maxwe import MaxWE
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import ResultCache
from repro.sim.config import ExperimentConfig
from repro.sim.resilience import Checkpoint, ResiliencePolicy
from repro.sim.result import SimulationResult
from repro.sim.runner import SimRunner, SimTask
from repro.sparing.base import SpareScheme
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS

#: Figure 6's x-axis: spare capacity as a percentage of total capacity.
FIG6_SPARE_FRACTIONS: Tuple[float, ...] = (0.0, 0.01, 0.1, 0.2, 0.3, 0.4, 0.5)

#: Figure 7's x-axis: SWR capacity as a percentage of the spare capacity.
FIG7_SWR_FRACTIONS: Tuple[float, ...] = (0.0, 0.2, 0.6, 0.8, 0.9, 1.0)

#: Figure 7/8's wear-leveling baselines, in paper order.
EVALUATED_WEAR_LEVELERS: Tuple[str, ...] = ("tlsr", "pcm-s", "bwl", "wawl")

#: Sparing-scheme factories for the comparison figures, in paper order.
SPARING_FACTORIES: Dict[str, Callable[[float, float], SpareScheme]] = {
    "ps-worst": lambda p, q: PS.worst_case(p),
    "pcd-ps": lambda p, q: PCD(p),
    "max-we": lambda p, q: MaxWE(p, q),
}

#: Figure-vocabulary sparing names -> runner/batch vocabulary.
_TASK_SPARING_NAMES: Dict[str, str] = {
    "no-protection": "none",
    "ps-worst": "ps-worst",
    "pcd-ps": "pcd",
    "max-we": "max-we",
}


def _run_tasks(
    tasks: Sequence[SimTask],
    jobs: int,
    cache: Optional[ResultCache],
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    trials_per_task: Optional[int] = None,
    backend: object = None,
) -> List[SimulationResult]:
    return SimRunner(
        jobs=jobs, cache=cache, policy=policy, checkpoint=checkpoint,
        metrics=metrics, trials_per_task=trials_per_task, backend=backend,
    ).run(tasks)


def spare_fraction_sweep(
    config: ExperimentConfig | None = None,
    fractions: Sequence[float] = FIG6_SPARE_FRACTIONS,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "fluid-batched",
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
    trials_per_task: Optional[int] = None,
    backend: object = None,
) -> List[Tuple[float, SimulationResult]]:
    """Figure 6: Max-WE under UAA across spare-capacity percentages.

    The paper notes lifetime under UAA is independent of the wear-leveling
    scheme (uniform traffic is permutation-invariant), so no wear-leveler
    is varied here.  A zero fraction degenerates to the unprotected device.
    """
    config = config if config is not None else ExperimentConfig()
    tasks = [
        SimTask(
            attack="uaa",
            sparing="none" if fraction == 0.0 else "max-we",
            p=fraction,
            swr=config.swr_fraction,
            config=config,
            engine=engine,
            paranoia=paranoia,
            shadow_sample=shadow_sample,
            label=f"spare={fraction:.0%}",
        )
        for fraction in fractions
    ]
    results = _run_tasks(tasks, jobs, cache, policy, checkpoint, metrics, trials_per_task, backend)
    return list(zip(fractions, results))


def swr_fraction_sweep(
    config: ExperimentConfig | None = None,
    swr_fractions: Sequence[float] = FIG7_SWR_FRACTIONS,
    wearlevelers: Sequence[str] = EVALUATED_WEAR_LEVELERS,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "fluid-batched",
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
    trials_per_task: Optional[int] = None,
    backend: object = None,
) -> Dict[str, List[Tuple[float, SimulationResult]]]:
    """Figure 7: Max-WE under BPA across SWR shares, per wear-leveler."""
    config = config if config is not None else ExperimentConfig()
    tasks = [
        SimTask(
            attack="bpa",
            sparing="max-we",
            wearlevel=wl_name,
            p=config.spare_fraction,
            swr=swr_fraction,
            config=config,
            engine=engine,
            paranoia=paranoia,
            shadow_sample=shadow_sample,
            label=f"{wl_name}/swr={swr_fraction:.0%}",
        )
        for wl_name in wearlevelers
        for swr_fraction in swr_fractions
    ]
    results = iter(_run_tasks(tasks, jobs, cache, policy, checkpoint, metrics, trials_per_task, backend))
    return {
        wl_name: [(swr_fraction, next(results)) for swr_fraction in swr_fractions]
        for wl_name in wearlevelers
    }


def bpa_scheme_comparison(
    config: ExperimentConfig | None = None,
    wearlevelers: Sequence[str] = EVALUATED_WEAR_LEVELERS,
    sparing_names: Sequence[str] = ("ps-worst", "pcd-ps", "max-we"),
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "fluid-batched",
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
    trials_per_task: Optional[int] = None,
    backend: object = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Figure 8: sparing schemes under BPA across wear-levelers.

    Returns ``{sparing_name: {wl_name: result}}``; apply
    :func:`repro.util.stats.geometric_mean` over each inner dict's
    normalized lifetimes for the paper's Gmean bars.
    """
    config = config if config is not None else ExperimentConfig()
    tasks = [
        SimTask(
            attack="bpa",
            sparing=_TASK_SPARING_NAMES[sparing_name],
            wearlevel=wl_name,
            p=config.spare_fraction,
            swr=config.swr_fraction,
            config=config,
            engine=engine,
            paranoia=paranoia,
            shadow_sample=shadow_sample,
            label=f"{sparing_name}/{wl_name}",
        )
        for sparing_name in sparing_names
        for wl_name in wearlevelers
    ]
    results = iter(_run_tasks(tasks, jobs, cache, policy, checkpoint, metrics, trials_per_task, backend))
    return {
        sparing_name: {wl_name: next(results) for wl_name in wearlevelers}
        for sparing_name in sparing_names
    }


def uaa_scheme_comparison(
    config: ExperimentConfig | None = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "fluid-batched",
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
    trials_per_task: Optional[int] = None,
    backend: object = None,
) -> Dict[str, SimulationResult]:
    """Section 5.3.1: UAA lifetimes at 10% spares for all sparing schemes.

    Returns results for ``no-protection``, ``ps-worst``, ``pcd-ps`` and
    ``max-we``; the paper reports 4.1%, 28.5%, 30.6% and 43.1% of the
    ideal lifetime respectively (9.5X / 7.4X / 6.9X improvements).
    """
    config = config if config is not None else ExperimentConfig()
    names = ("no-protection", "ps-worst", "pcd-ps", "max-we")
    tasks = [
        SimTask(
            attack="uaa",
            sparing=_TASK_SPARING_NAMES[name],
            p=config.spare_fraction,
            swr=config.swr_fraction,
            config=config,
            engine=engine,
            paranoia=paranoia,
            shadow_sample=shadow_sample,
            label=name,
        )
        for name in names
    ]
    results = _run_tasks(tasks, jobs, cache, policy, checkpoint, metrics, trials_per_task, backend)
    return dict(zip(names, results))
