"""The exact per-write reference simulator.

Drives a real :class:`~repro.device.bank.NVMBank` with an attack's
per-write address stream through a real wear-leveling mechanism and a
sparing scheme, counting every write (including remap data movement)
against per-line endurance.  It makes no stationarity assumption, so it
validates the fluid engine -- at per-write cost, which restricts it to
small banks (hundreds of lines, endurance in the thousands).

Capacity-degrading schemes (PCD) are supported with the identity
wear-leveler only: slot removal shrinks the logical space, which the
region-permutation wear-levelers cannot re-index mid-flight.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import AttackModel
from repro.device.bank import NVMBank
from repro.device.faults import FaultModel
from repro.endurance.emap import EnduranceMap
from repro.sim.result import SimulationResult
from repro.sparing.base import (
    ExtendBudget,
    FailDevice,
    RemoveSlot,
    ReplaceWith,
    SpareScheme,
)
from repro.util.rng import RandomState, derive_rng
from repro.wearlevel.base import WearLeveler
from repro.wearlevel.none import NoWearLeveling


class ReferenceSimulator:
    """Exact, per-write lifetime simulation.

    Parameters mirror :class:`~repro.sim.lifetime.LifetimeSimulator`; an
    additional ``max_writes`` guards against unbounded runs when a
    configuration never fails.
    """

    def __init__(
        self,
        emap: EnduranceMap,
        attack: AttackModel,
        sparing: SpareScheme,
        wearleveler: Optional[WearLeveler] = None,
        fault_model: Optional[FaultModel] = None,
        rng: RandomState = None,
        max_writes: int = 50_000_000,
    ) -> None:
        if max_writes <= 0:
            raise ValueError(f"max_writes must be positive, got {max_writes}")
        self._emap = emap
        self._attack = attack
        self._sparing = sparing
        self._wl = wearleveler if wearleveler is not None else NoWearLeveling()
        self._fault_model = fault_model if fault_model is not None else FaultModel()
        self._rng = rng
        self._max_writes = max_writes

    def run(self) -> SimulationResult:
        """Simulate write by write until device failure (or the guard)."""
        bank = NVMBank(self._emap, fault_model=self._fault_model)
        sparing_rng = derive_rng(self._rng, "sparing")
        self._sparing.initialize(self._emap, sparing_rng)
        backing = self._sparing.initial_backing.copy()
        slots = backing.size
        min_user_slots = min(self._sparing.min_user_slots, slots)

        wl_rng = derive_rng(self._rng, "wearlevel")
        self._wl.attach(bank.endurance[backing], wl_rng)
        removable = not isinstance(self._wl, NoWearLeveling)
        alive_slots = list(range(slots))
        slot_alive = np.ones(slots, dtype=bool)

        user_lines = getattr(self._wl, "logical_lines", slots)
        stream_rng = derive_rng(self._rng, "attack")
        stream = self._attack.stream(user_lines, stream_rng)

        served = 0
        deaths = 0
        replacements = 0
        failure_reason = f"write guard reached ({self._max_writes} writes)"
        failed = False

        def write_slot(slot: int, count: int) -> bool:
            """Apply writes to a slot's backing line; True if device failed."""
            nonlocal deaths, replacements, failure_reason
            for _ in range(count):
                line = int(backing[slot])
                if not bank.is_alive(line):
                    # A replacement line independently died (can only
                    # happen through fault injection); treat as failure.
                    failure_reason = f"backing line {line} dead with no event"
                    return True
                if not bank.write(line, 1):
                    continue
                deaths += 1
                outcome = self._sparing.replace(slot, line)
                if isinstance(outcome, ReplaceWith):
                    replacements += 1
                    backing[slot] = outcome.line
                elif isinstance(outcome, ExtendBudget):
                    replacements += 1
                    bank.salvage(line, outcome.wear)
                elif isinstance(outcome, RemoveSlot):
                    slot_alive[slot] = False
                    alive_slots.remove(slot)
                    if len(alive_slots) < min_user_slots:
                        failure_reason = (
                            f"capacity degraded below user capacity "
                            f"({len(alive_slots)} < {min_user_slots} slots)"
                        )
                        return True
                else:
                    assert isinstance(outcome, FailDevice)
                    failure_reason = outcome.reason
                    return True
            return False

        for request in stream:
            if served >= self._max_writes or failed:
                break
            if removable and len(alive_slots) < slots:
                raise RuntimeError(
                    "capacity-degrading schemes require the identity wear-leveler "
                    "in the reference simulator"
                )
            if slot_alive.all():
                slot = self._wl.translate(request.address)
            else:
                # Degraded mode (identity WL): fold the address onto the
                # surviving slots.
                slot = alive_slots[request.address % len(alive_slots)]
            failed = write_slot(slot, 1)
            if failed:
                break
            served += 1
            for side_slot, extra in self._wl.record_write(request.address):
                if not slot_alive[side_slot]:
                    continue
                failed = write_slot(side_slot, extra)
                if failed:
                    break
            if failed:
                break

        metadata = {
            "attack": self._attack.describe(),
            "wearleveler": self._wl.describe(),
            "sparing": self._sparing.describe(),
            "fault_model": self._fault_model.describe(),
            "slots": slots,
            "engine": "reference",
        }
        return SimulationResult(
            writes_served=float(served),
            total_endurance=bank.total_endurance,
            deaths=deaths,
            replacements=replacements,
            failure_reason=failure_reason,
            metadata=metadata,
        )
