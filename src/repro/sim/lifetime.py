"""The fluid (mean-field) lifetime engines.

Both engines advance a *virtual clock* tau under which the wear on the
line backing slot ``i`` is ``u_i * tau``, where ``u_i`` is the slot's
stationary wear weight from the wear-leveling scheme.  Death events
trigger the sparing scheme; replacements extend a slot's budget, capacity
degradation removes slots.  User writes served are integrated as
``eta * sum(u_alive) dtau`` where ``eta`` is the useful-write fraction
(remap overhead discounts it).

Why this is exact under stationarity: however capacity shrinks, relative
wear rates between surviving slots are fixed by the stationary
distribution, so expressing wear directly in tau (rather than in user-
write time) linearizes every trajectory; the monotone map back to served
writes is the integral above.  The exact per-write
:class:`~repro.sim.reference.ReferenceSimulator` validates the
approximation end to end in the test suite.

Two implementations share this model:

* ``fluid-exact`` -- the scalar event loop: a heap of death times,
  one :meth:`~repro.sparing.base.SpareScheme.replace` call per death.
* ``fluid-batched`` (default) -- the vectorized epoch kernel: death
  times live in one numpy array; each epoch selects the next batch of
  deaths with ``argpartition``, trims it to a *chronologically safe
  prefix*, decides the whole prefix in one
  :meth:`~repro.sparing.base.SpareScheme.replace_batch` call, and
  integrates the served writes of the epoch with a cumulative sum.

The safe prefix is what keeps batching exact rather than approximate.
From a batch sorted by ``(death time, slot)`` -- the same order the heap
pops -- only deaths with ``v < v_first + floor / w_max`` are processed
together, where ``floor`` is the scheme's lower bound on the wear budget
any single replacement adds (:meth:`SpareScheme.replacement_extra_floor`)
and ``w_max`` the largest wear weight.  Within such a window no
replacement can push its slot's *next* death back inside the window, so
deciding the prefix in one call observes exactly the event order the
scalar loop would.  Death times themselves are computed with the same
float expression in both engines, so death and replacement counts agree
exactly; only the summation order of the served-writes integral differs
(agreement to ~1e-12 relative, tested at 1e-9).

Concentrated-wear attacks (BPA) collapse the safe prefix to single
deaths, which used to cost a full-device scan per death.  The batched
kernel therefore runs in two *regimes*: after
``SEQUENTIAL_ENTER_STREAK`` consecutive one-death epochs it builds a
:class:`~repro.sim.frontier.DeathFrontier` -- a lazy-deletion heap over
``current_death`` in exact ``(time, slot)`` lexsort order, bounded to
the ``FRONTIER_LIMIT`` soonest deaths -- and pops provably-identical
epochs in O(log work-set) per death; single-death epochs further
collapse to the scalar expressions their array counterparts reduce to.
The frontier bails (and the kernel falls back to the vectorized scan)
whenever equivalence cannot be proven.  In this regime the safe-prefix
bound also tightens from the global ``w_max`` to the maximum weight
among still-prone slots.  Result metadata counts the bookkeeping:
``epochs`` (passes that processed deaths), ``sequential_rounds``
(frontier-served passes), ``regime_switches`` (transitions either way),
and ``full_scans`` (full-array selection passes); the same names land
in the metrics registry as ``sim.*`` counters next to a
``sim.epoch_size`` histogram.  ``fluid-exact`` routes its heap through
the same index, so its compaction rebuilds stopped rescanning the
device (``heap_compactions`` keeps its historical meaning).  See
``docs/fluid_engine.md``, "Kernel regimes".
"""

from __future__ import annotations

import math
import sys
from typing import Optional

import numpy as np

from repro.attacks.base import AttackModel
from repro.device.faults import FaultModel
from repro.endurance.emap import EnduranceMap
from repro.obs.metrics import MetricsRegistry, maybe_span
from repro.sim.faults import FaultInjector, active_injector, active_task_key
from repro.sim.frontier import DeathFrontier
from repro.sim.result import SimulationResult, TimelineEvent
from repro.sparing.base import (
    BATCH_EXTEND,
    BATCH_FAIL,
    BATCH_REMOVE,
    BATCH_REPLACE,
    ExtendBudget,
    FailDevice,
    RemoveSlot,
    ReplaceWith,
    SpareScheme,
)
from repro.util.rng import RandomState, derive_rng
from repro.verify.invariants import EngineGuard, InvariantViolation, normalize_paranoia
from repro.verify.shadow import compare_runs, should_audit
from repro.verify.snapshot import write_violation_bundle
from repro.wearlevel.base import WearLeveler
from repro.wearlevel.none import NoWearLeveling

#: Engine names accepted by :class:`LifetimeSimulator` and the CLI.
#: ``fluid-ensemble`` shares the batched epoch math but advances many
#: Monte-Carlo trials per invocation (see :mod:`repro.sim.ensemble`);
#: a single run on it is bit-identical to ``fluid-batched``.
ENGINES = ("fluid-batched", "fluid-exact", "fluid-ensemble")

#: Historical aliases for engine names.
_ENGINE_ALIASES = {"fluid": "fluid-exact"}

#: The scalar engine compacts its heap when it outgrows ``slots`` by this
#: factor (stale entries from repeated replacements); kept as a module
#: constant so tests can force compaction.
HEAP_SLACK = 2

#: Upper bound on deaths pulled into one epoch of the batched engine.
BATCH_LIMIT = 4096

#: Consecutive one-death epochs before the batched kernel drops into its
#: frontier-driven sequential regime (the BPA / concentrated-wear
#: signature: safe prefixes collapsed to a single death, so every
#: vectorized full-array scan buys exactly one event).
SEQUENTIAL_ENTER_STREAK = 4

#: Largest epoch the sequential regime serves before handing back to the
#: vectorized scan.  Must stay strictly below ``BATCH_LIMIT``: a frontier
#: epoch smaller than ``BATCH_LIMIT`` is provably the exact vectorized
#: selection, while at ``BATCH_LIMIT`` the argpartition tie-trim could
#: reshape it (see :meth:`DeathFrontier.pop_epoch`).
SEQUENTIAL_EPOCH_CAP = 64

#: Work-set size of the sequential regime's death-frontier index.
FRONTIER_LIMIT = 8192

_DEGENERATE_REASON = "no wear-prone traffic (simulation degenerate)"
_EXHAUSTED_REASON = "all wear-prone slots exhausted"

_ACTION_NAMES = {
    BATCH_REPLACE: "replaced",
    BATCH_EXTEND: "extended",
    BATCH_REMOVE: "removed",
    BATCH_FAIL: "device-failed",
}


def normalize_engine(engine: str) -> str:
    """Resolve an engine name (accepting aliases) or raise ``ValueError``."""
    resolved = _ENGINE_ALIASES.get(engine, engine)
    if resolved not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return resolved


def accounting_tolerance(scale: float, events: int) -> float:
    """Absolute float tolerance of the served-writes accounting.

    Derived from the engines' accumulation structure rather than a magic
    epsilon: the served integral and the guard's shadow ledger each
    perform O(1) roundings per event (a death, or one slot's initial
    budget), every intermediate bounded in magnitude by ``scale`` (the
    device's total serveable wear).  Each rounding contributes at most
    ``eps * scale``; the factor 64 covers the constant number of
    operations per event in both engines with a wide margin.  The
    wear-conservation invariant and any round-trip accounting comparison
    must use this bound so engine numerics changes (e.g. compensated
    summation) automatically retune it.
    """
    return 64.0 * sys.float_info.epsilon * max(scale, 1.0) * float(max(events, 64))


def _apply_state_corruption(
    kind: str,
    served: float,
    backing: np.ndarray,
    current_death: np.ndarray,
    total_endurance: float,
) -> float:
    """Apply one injected ``corrupt-state`` fault to live engine state.

    Returns the (possibly corrupted) served-writes accumulator.  Three
    deterministic corruption shapes, each targeted at a different
    invariant family:

    * ``wear`` -- inflate the served-writes integral (wear conservation);
    * ``mapping`` -- point one live slot at another's backing line
      (mapping consistency / duplicate physical lines);
    * ``death`` -- schedule a slot to die in the past (non-negative
      endurance).

    Falls back to ``wear`` when the targeted corruption needs live slots
    the current state no longer has, so an injection never no-ops.
    """
    finite = np.flatnonzero(np.isfinite(current_death))
    if kind == "mapping" and finite.size >= 2:
        backing[finite[0]] = backing[finite[1]]
        return served
    if kind == "death":
        slot = int(finite[0]) if finite.size else 0
        current_death[slot] = -1.0
        return served
    return served + 0.25 * total_endurance + 1.0


class LifetimeSimulator:
    """Fluid lifetime simulation of one device/attack/defence combination.

    Parameters
    ----------
    emap:
        Device endurance map.
    attack:
        Attack or workload model.
    sparing:
        Spare-line replacement scheme (fresh instance; initialized here).
    wearleveler:
        Wear-leveling scheme (fresh instance; attached here); defaults to
        the identity scheme.
    fault_model:
        Optional fault model adjusting effective endurance (e.g. ECP).
    rng:
        Master seed; forked deterministically into per-component streams.
    engine:
        ``"fluid-batched"`` (vectorized epoch kernel, the default) or
        ``"fluid-exact"`` (scalar event loop, kept for differential
        testing).  Both produce identical death/replacement counts.
    record_timeline:
        Whether to record per-death :class:`TimelineEvent` entries.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`: the run
        records ``sim/init`` and ``sim/kernel`` spans plus deterministic
        counters (``sim.deaths``, ``sim.replacements``, per-engine
        ``sim.epochs`` / ``sim.sequential_rounds`` /
        ``sim.regime_switches`` / ``sim.full_scans`` /
        ``sim.heap_compactions``) and the ``sim.deaths_per_run`` and
        ``sim.epoch_size`` histograms (the latter makes the batched
        kernel's regime visible: 1-wide epochs are the sequential
        signature).  With verification enabled it also records
        ``verify.checks`` / ``verify.violations`` counters and
        ``verify/invariants`` / ``verify/shadow`` spans.
    paranoia:
        State-integrity checking level (``"off"``, ``"cheap"``,
        ``"full"``); see :mod:`repro.verify.invariants`.  Checks never
        mutate state, so results are bit-identical across levels.
    shadow_sample:
        Probability in ``[0, 1]`` that this run (when on the default
        ``fluid-batched`` engine) is differentially re-executed on the
        exact reference engine, escalating divergence as a
        :class:`~repro.verify.shadow.ShadowDivergence`.  Sampling is
        deterministic in the task key; requires an integer ``rng`` seed
        so the shadow re-execution is exact.
    """

    def __init__(
        self,
        emap: EnduranceMap,
        attack: AttackModel,
        sparing: SpareScheme,
        wearleveler: Optional[WearLeveler] = None,
        fault_model: Optional[FaultModel] = None,
        rng: RandomState = None,
        record_timeline: bool = True,
        max_timeline_events: int = 100_000,
        engine: str = "fluid-batched",
        metrics: Optional[MetricsRegistry] = None,
        paranoia: str = "off",
        shadow_sample: float = 0.0,
    ) -> None:
        self._emap = emap
        self._attack = attack
        self._sparing = sparing
        self._wl = wearleveler if wearleveler is not None else NoWearLeveling()
        self._fault_model = fault_model if fault_model is not None else FaultModel()
        self._rng = rng
        self._record_timeline = record_timeline
        self._max_timeline_events = max_timeline_events
        self._engine = normalize_engine(engine)
        self._metrics = metrics
        self._paranoia = normalize_paranoia(paranoia)
        shadow_sample = float(shadow_sample)
        if not 0.0 <= shadow_sample <= 1.0:
            raise ValueError(
                f"shadow_sample must be in [0, 1], got {shadow_sample!r}"
            )
        if shadow_sample > 0.0 and not isinstance(rng, (int, np.integer)):
            raise ValueError(
                "shadow audits require an integer rng seed: the audit "
                "re-executes the run from scratch, which a stateful "
                "Generator (or None) cannot reproduce deterministically"
            )
        self._shadow_sample = shadow_sample

    def _integrity_key(self) -> str:
        """Stable key for corruption rolls and shadow sampling.

        Prefers the supervising runner's task key (set via
        :func:`repro.sim.faults.task_scope`); standalone runs derive an
        equivalent key from the run's own identity.
        """
        key = active_task_key()
        if key:
            return key
        return "|".join(
            (
                self._attack.describe(),
                self._sparing.describe(),
                self._wl.describe(),
                repr(self._rng),
                self._engine,
            )
        )

    def _repro_key(self) -> dict:
        """The pinned reproduction key violations carry."""
        return {
            "seed": repr(self._rng),
            "engine": self._engine,
            "attack": self._attack.describe(),
            "sparing": self._sparing.describe(),
            "wearleveler": self._wl.describe(),
            "paranoia": self._paranoia,
            "shadow_sample": self._shadow_sample,
        }

    def run(self) -> SimulationResult:
        """Simulate until device failure; returns the lifetime result.

        Raises :class:`~repro.verify.invariants.InvariantViolation` (after
        writing a ``.repro-debug/`` bundle) if state-integrity checking is
        enabled and a predicate fails, or if a sampled shadow audit
        diverges.
        """
        if self._engine == "fluid-ensemble":
            # A single run is a one-trial ensemble; the ensemble module
            # owns guard wiring and shadow delegation for its members.
            from repro.sim.ensemble import EnsembleMember, simulate_ensemble

            [result] = simulate_ensemble(
                [
                    EnsembleMember(
                        emap=self._emap,
                        attack=self._attack,
                        sparing=self._sparing,
                        wearleveler=self._wl,
                        fault_model=self._fault_model,
                        rng=self._rng,
                    )
                ],
                record_timeline=self._record_timeline,
                max_timeline_events=self._max_timeline_events,
                metrics=self._metrics,
                paranoia=self._paranoia,
                shadow_sample=self._shadow_sample,
            )
            return result
        try:
            result = self._run_once()
        except InvariantViolation as violation:
            write_violation_bundle(violation)
            raise
        if (
            self._shadow_sample > 0.0
            and self._engine == "fluid-batched"
            and should_audit(self._shadow_sample, self._integrity_key())
        ):
            try:
                self._shadow_audit(result)
            except InvariantViolation as violation:
                if self._metrics is not None:
                    self._metrics.inc("verify.violations")
                write_violation_bundle(violation)
                raise
        return result

    def _shadow_audit(self, primary: SimulationResult) -> None:
        """Re-run on the exact reference engine and compare results."""
        with maybe_span(self._metrics, "verify/shadow"):
            if self._metrics is not None:
                self._metrics.inc("verify.shadow_audits")
            reference = LifetimeSimulator(
                self._emap,
                self._attack,
                self._sparing,
                self._wl,
                self._fault_model,
                self._rng,
                record_timeline=False,
                engine="fluid-exact",
                paranoia="off",
            )
            shadow_result = reference._run_once()
            compare_runs(
                primary,
                shadow_result,
                rounds=primary.deaths,
                repro=self._repro_key(),
            )

    def _run_once(self) -> SimulationResult:
        with maybe_span(self._metrics, "sim/init"):
            emap = self._emap
            endurance = self._fault_model.effective_endurance(emap.line_endurance)
            total_endurance = float(endurance.sum())

            sparing_rng = derive_rng(self._rng, "sparing")
            self._sparing.initialize(emap, sparing_rng)
            backing = self._sparing.initial_backing
            slots = backing.size
            min_user_slots = min(self._sparing.min_user_slots, slots)

            wl_rng = derive_rng(self._rng, "wearlevel")
            self._wl.attach(endurance[backing], wl_rng)
            profile = self._attack.profile(slots)
            distribution = self._wl.wear_weights(profile)
            weights = np.asarray(distribution.weights, dtype=float)
            if weights.size != slots:
                raise ValueError(
                    f"wear-leveler produced {weights.size} weights for {slots} slots"
                )
            eta = distribution.useful_fraction

            budgets = endurance[backing].astype(float)
            current_death = np.full(slots, math.inf)
            prone = weights > 0.0
            current_death[prone] = budgets[prone] / weights[prone]

            guard: Optional[EngineGuard] = None
            if self._paranoia != "off":
                guard = EngineGuard(
                    self._paranoia,
                    sparing=self._sparing,
                    endurance=endurance,
                    weights=weights,
                    eta=eta,
                    total_endurance=total_endurance,
                    tolerance=accounting_tolerance,
                    metrics=self._metrics,
                    repro=self._repro_key(),
                )
                guard.start(backing)
            injector = active_injector()
            corruptor: Optional[FaultInjector] = (
                injector
                if injector is not None and injector.spec.corrupt_state > 0.0
                else None
            )

        if self._engine == "fluid-exact":
            runner = self._run_exact
        else:
            runner = self._run_batched
        with maybe_span(self._metrics, "sim/kernel"):
            served, deaths, replacements, failure_reason, timeline, extra_meta = runner(
                endurance=endurance,
                backing=backing,
                weights=weights,
                eta=eta,
                current_death=current_death,
                min_user_slots=min_user_slots,
                guard=guard,
                corruptor=corruptor,
                total_endurance=total_endurance,
            )

        if self._metrics is not None:
            self._metrics.inc("sim.runs")
            self._metrics.inc("sim.deaths", deaths)
            self._metrics.inc("sim.replacements", replacements)
            for name, value in extra_meta.items():
                self._metrics.inc(f"sim.{name}", value)
            self._metrics.observe("sim.deaths_per_run", deaths)

        metadata = {
            "attack": self._attack.describe(),
            "wearleveler": self._wl.describe(),
            "sparing": self._sparing.describe(),
            "fault_model": self._fault_model.describe(),
            "slots": slots,
            "engine": self._engine,
            **extra_meta,
        }
        return SimulationResult(
            writes_served=served,
            total_endurance=total_endurance,
            deaths=deaths,
            replacements=replacements,
            failure_reason=failure_reason,
            metadata=metadata,
            timeline=tuple(timeline),
        )

    # ------------------------------------------------------------------
    # fluid-exact: scalar event loop
    # ------------------------------------------------------------------

    def _run_exact(
        self,
        endurance: np.ndarray,
        backing: np.ndarray,
        weights: np.ndarray,
        eta: float,
        current_death: np.ndarray,
        min_user_slots: int,
        guard: Optional[EngineGuard] = None,
        corruptor: Optional[FaultInjector] = None,
        total_endurance: float = 0.0,
    ) -> tuple[float, int, int, str, list[TimelineEvent], dict]:
        slots = backing.size
        alive = np.ones(slots, dtype=bool)
        # The shared death-frontier index is the historical heap: same
        # (time, slot) entries, same lazy deletion, and its compaction
        # cadence is pinned by the same ``slots * HEAP_SLACK`` cap -- but
        # rebuilds reuse the index's single implementation instead of an
        # ad-hoc flatnonzero reconstruction per overflow.
        frontier = DeathFrontier(
            current_death, cap=slots * HEAP_SLACK, alive=alive
        )
        # fsum: the initial active weight is the one sum every served-
        # writes increment multiplies, so compute it exactly (a uniform
        # 20-slot profile must sum to 1.0, not 1.0 + 1ulp).
        active_weight = math.fsum(weights)
        served = 0.0
        served_error = 0.0  # Kahan compensation for the served integral
        v_now = 0.0
        deaths = 0
        rounds = 0
        replacements = 0
        failure_reason = _DEGENERATE_REASON
        timeline: list[TimelineEvent] = []
        integrity_key = (
            self._integrity_key() if corruptor is not None else ""
        )

        def view():
            assert guard is not None
            return guard.make_view(
                served=served,
                v_now=v_now,
                deaths=deaths,
                backing=backing,
                current_death=current_death,
            )

        def record(slot: int, dead_line: int, action: str, replacement: int | None) -> None:
            if self._record_timeline and len(timeline) < self._max_timeline_events:
                timeline.append(
                    TimelineEvent(
                        writes_served=served,
                        slot=slot,
                        dead_line=dead_line,
                        action=action,
                        replacement_line=replacement,
                    )
                )

        while (entry := frontier.pop()) is not None:
            v, slot = entry
            rounds += 1
            if corruptor is not None:
                kind = corruptor.corrupt_state(integrity_key, rounds)
                if kind is not None:
                    served = _apply_state_corruption(
                        kind, served, backing, current_death, total_endurance
                    )
                    v = float(current_death[slot])
            if guard is not None:
                guard.on_round(view)
            # Kahan-compensated accumulation: each increment is tiny
            # relative to the running total late in long runs.
            increment = (v - v_now) * active_weight * eta - served_error
            fresh = served + increment
            served_error = (fresh - served) - increment
            served = fresh
            v_now = v
            deaths += 1
            dead_line = int(backing[slot])

            outcome = self._sparing.replace(slot, dead_line)
            if isinstance(outcome, ReplaceWith):
                replacements += 1
                if guard is not None:
                    guard.record_death(
                        slot, dead_line, BATCH_REPLACE, line=outcome.line
                    )
                backing[slot] = outcome.line
                extra = float(endurance[outcome.line])
                new_death = v_now + extra / weights[slot]
                current_death[slot] = new_death
                frontier.push(slot, new_death)
                record(slot, dead_line, "replaced", outcome.line)
                continue
            if isinstance(outcome, ExtendBudget):
                replacements += 1
                if guard is not None:
                    guard.record_death(
                        slot, dead_line, BATCH_EXTEND, wear=outcome.wear
                    )
                new_death = v_now + outcome.wear / weights[slot]
                current_death[slot] = new_death
                frontier.push(slot, new_death)
                record(slot, dead_line, "extended", None)
                continue
            if isinstance(outcome, RemoveSlot):
                if guard is not None:
                    guard.record_death(slot, dead_line, BATCH_REMOVE)
                alive[slot] = False
                active_weight -= float(weights[slot])
                current_death[slot] = math.inf
                record(slot, dead_line, "removed", None)
                live_count = int(alive.sum())
                if live_count < min_user_slots:
                    failure_reason = (
                        f"capacity degraded below user capacity "
                        f"({live_count} < {min_user_slots} slots)"
                    )
                    break
                continue
            assert isinstance(outcome, FailDevice)
            if guard is not None:
                guard.record_death(slot, dead_line, BATCH_FAIL)
            failure_reason = outcome.reason
            record(slot, dead_line, "device-failed", None)
            break
        else:
            if deaths > 0:
                failure_reason = _EXHAUSTED_REASON

        if guard is not None:
            guard.final_check(view)
        extra_meta = {"heap_compactions": frontier.compactions}
        return served, deaths, replacements, failure_reason, timeline, extra_meta

    # ------------------------------------------------------------------
    # fluid-batched: vectorized epoch kernel
    # ------------------------------------------------------------------

    def _run_batched(
        self,
        endurance: np.ndarray,
        backing: np.ndarray,
        weights: np.ndarray,
        eta: float,
        current_death: np.ndarray,
        min_user_slots: int,
        guard: Optional[EngineGuard] = None,
        corruptor: Optional[FaultInjector] = None,
        total_endurance: float = 0.0,
    ) -> tuple[float, int, int, str, list[TimelineEvent], dict]:
        served = 0.0
        v_now = 0.0
        deaths = 0
        rounds = 0
        replacements = 0
        epochs = 0
        live_count = backing.size
        # fsum: see _run_exact -- the uniform-profile weight sum must be
        # exactly 1.0 or every served increment carries the 1ulp error.
        active_weight = math.fsum(weights)
        w_max = float(weights.max()) if weights.size else 0.0
        # Tightened safe-prefix bound: the largest weight among *still
        # prone* slots.  Slots only ever leave the prone set (removal or
        # terminal failure), so the last recomputed maximum stays a valid
        # upper bound; ``w_max_live`` lazily counts the prone slots at
        # that maximum and triggers a recompute only when it hits zero.
        w_max_active = w_max
        w_max_live = -1  # -1 = count not yet materialized
        failure_reason = _DEGENERATE_REASON
        timeline: list[TimelineEvent] = []
        floor = self._sparing.replacement_extra_floor()
        integrity_key = (
            self._integrity_key() if corruptor is not None else ""
        )
        # Adaptive regime switch: consecutive one-death epochs (the
        # concentrated-wear signature) hand selection to the incremental
        # death-frontier index; any epoch it cannot prove identical to
        # the vectorized selection hands back.  Guards re-inspect full
        # state every round and corruption mutates it behind the index's
        # back, so both pin the kernel to the vectorized regime.
        frontier: Optional[DeathFrontier] = None
        sequential_ok = guard is None and corruptor is None
        size1_streak = 0
        sequential_rounds = 0
        regime_switches = 0
        full_scans = 0

        def view():
            assert guard is not None
            return guard.make_view(
                served=served,
                v_now=v_now,
                deaths=deaths,
                backing=backing,
                current_death=current_death,
            )

        while True:
            # A "round" is every pass through the loop (including the
            # final empty one); ``epochs`` keeps its original meaning of
            # passes that processed at least one death.
            rounds += 1
            if corruptor is not None:
                kind = corruptor.corrupt_state(integrity_key, rounds)
                if kind is not None:
                    served = _apply_state_corruption(
                        kind, served, backing, current_death, total_endurance
                    )
            if guard is not None:
                guard.on_round(view)

            sel = times = None
            if frontier is not None:
                # Sequential micro-loop: pop the epoch straight off the
                # index -- O(epoch log workset), independent of device
                # size -- and fall back the moment equivalence to the
                # vectorized selection cannot be proven.
                epoch = frontier.pop_epoch(
                    floor, w_max_active, min(SEQUENTIAL_EPOCH_CAP, BATCH_LIMIT - 1)
                )
                if epoch is None:
                    frontier = None
                    size1_streak = 0
                    regime_switches += 1
                elif not epoch[0]:
                    if deaths > 0:
                        failure_reason = _EXHAUSTED_REASON
                    break
                elif len(epoch[0]) == 1:
                    # One-death epoch: the vectorized body collapses to a
                    # handful of scalar IEEE operations (each expression
                    # below is the element-wise form of its array
                    # counterpart, so results stay bit-identical), and
                    # the scheme's scalar replace() -- pinned equivalent
                    # to replace_batch by the differential suite -- skips
                    # the per-batch array machinery entirely.
                    sequential_rounds += 1
                    epochs += 1
                    slot = epoch[0][0]
                    v = epoch[1][0]
                    served = served + (v - v_now) * active_weight * eta
                    v_now = v
                    deaths += 1
                    dead_line = int(backing[slot])
                    outcome = self._sparing.replace(slot, dead_line)
                    record_event = (
                        self._record_timeline
                        and len(timeline) < self._max_timeline_events
                    )
                    if self._metrics is not None:
                        self._metrics.observe("sim.epoch_size", 1)
                    if isinstance(outcome, ReplaceWith):
                        replacements += 1
                        backing[slot] = outcome.line
                        new_death = v + endurance[outcome.line] / weights[slot]
                        current_death[slot] = new_death
                        frontier.push(slot, new_death)
                        if record_event:
                            timeline.append(
                                TimelineEvent(
                                    writes_served=served,
                                    slot=slot,
                                    dead_line=dead_line,
                                    action="replaced",
                                    replacement_line=int(outcome.line),
                                )
                            )
                        continue
                    if isinstance(outcome, ExtendBudget):
                        replacements += 1
                        new_death = v + outcome.wear / weights[slot]
                        current_death[slot] = new_death
                        frontier.push(slot, new_death)
                        if record_event:
                            timeline.append(
                                TimelineEvent(
                                    writes_served=served,
                                    slot=slot,
                                    dead_line=dead_line,
                                    action="extended",
                                    replacement_line=None,
                                )
                            )
                        continue
                    if isinstance(outcome, RemoveSlot):
                        current_death[slot] = math.inf
                        live_count -= 1
                        active_weight -= float(weights[slot])
                        if (
                            floor is not None
                            and not math.isinf(floor)
                            and weights[slot] == w_max_active
                        ):
                            if w_max_live < 0:
                                w_max_live = int(
                                    np.count_nonzero(
                                        weights[np.isfinite(current_death)]
                                        == w_max_active
                                    )
                                )
                            else:
                                w_max_live -= 1
                            if w_max_live == 0:
                                survivors = weights[np.isfinite(current_death)]
                                if survivors.size:
                                    w_max_active = float(survivors.max())
                                    w_max_live = int(
                                        np.count_nonzero(
                                            survivors == w_max_active
                                        )
                                    )
                        if record_event:
                            timeline.append(
                                TimelineEvent(
                                    writes_served=served,
                                    slot=slot,
                                    dead_line=dead_line,
                                    action="removed",
                                    replacement_line=None,
                                )
                            )
                        if live_count < min_user_slots:
                            failure_reason = (
                                f"capacity degraded below user capacity "
                                f"({live_count} < {min_user_slots} slots)"
                            )
                            break
                        continue
                    assert isinstance(outcome, FailDevice)
                    current_death[slot] = math.inf
                    if record_event:
                        timeline.append(
                            TimelineEvent(
                                writes_served=served,
                                slot=slot,
                                dead_line=dead_line,
                                action="device-failed",
                                replacement_line=None,
                            )
                        )
                    failure_reason = outcome.reason
                    break
                else:
                    sel = np.asarray(epoch[0], dtype=np.intp)
                    times = np.asarray(epoch[1], dtype=float)
                    sequential_rounds += 1
            if sel is None:
                full_scans += 1
                candidates = np.flatnonzero(np.isfinite(current_death))
                if candidates.size == 0:
                    if deaths > 0:
                        failure_reason = _EXHAUSTED_REASON
                    break

                # Next BATCH_LIMIT deaths, in exact heap order (time, slot).
                if candidates.size > BATCH_LIMIT:
                    nearest = np.argpartition(
                        current_death[candidates], BATCH_LIMIT - 1
                    )[:BATCH_LIMIT]
                    sel = candidates[nearest]
                    times = current_death[sel]
                    # argpartition breaks time ties arbitrarily at the cut,
                    # so trim to a *complete* time-prefix: either everything
                    # strictly before the selection's max time, or -- when
                    # the whole selection ties -- the full tie class.
                    t_max = times.max()
                    strictly_before = times < t_max
                    if strictly_before.any():
                        sel = sel[strictly_before]
                        times = times[strictly_before]
                    else:
                        sel = candidates[current_death[candidates] == t_max]
                        times = current_death[sel]
                else:
                    sel = candidates
                    times = current_death[sel]
                order = np.lexsort((sel, times))
                sel = sel[order]
                times = times[order]

                # Chronologically safe prefix: no replacement made inside
                # the window can schedule its next death back into the
                # window.
                if floor is None:
                    prefix = 1
                elif math.isinf(floor):
                    prefix = sel.size
                else:
                    bound = times[0] + floor / w_max_active
                    prefix = max(
                        int(np.searchsorted(times, bound, side="left")), 1
                    )
                sel = sel[:prefix]
                times = times[:prefix]
            epochs += 1

            dead_lines = backing[sel]  # fancy index: a copy, safe to keep
            outcome = self._sparing.replace_batch(sel, dead_lines)
            count = outcome.size
            actions = outcome.actions
            fail_reason = outcome.fail_reason

            # Capacity-degradation failure truncates like the scalar loop:
            # the first removal dropping live slots below the floor is
            # still counted, everything after it never happens.
            removal_positions = np.flatnonzero(actions == BATCH_REMOVE)
            allowed_removals = live_count - min_user_slots
            if removal_positions.size > allowed_removals:
                count = int(removal_positions[allowed_removals]) + 1
                actions = actions[:count]
                removal_positions = removal_positions[:allowed_removals + 1]
                fail_reason = None  # capacity failure preempts a later one
                capacity_failed = True
            else:
                capacity_failed = False
            sel = sel[:count]
            times = times[:count]
            dead_lines = dead_lines[:count]
            lines = outcome.lines[:count]
            wear = outcome.wear[:count]
            deaths += count
            if guard is not None:
                guard.record_batch(sel, dead_lines, actions, lines, wear)

            # Served-writes integral over the epoch: per-segment active
            # weight drops by the weight of each slot removed so far.
            dv = np.diff(times, prepend=v_now)
            removed_w = np.zeros(count)
            removed_w[removal_positions] = weights[sel[removal_positions]]
            drained = np.cumsum(removed_w)
            seg_active = active_weight - (drained - removed_w)
            increments = dv * seg_active * eta
            served_at = served + np.cumsum(increments)
            served = float(served_at[-1])
            v_now = float(times[-1])
            active_weight -= float(drained[-1])

            # Apply the verdicts.
            rep = np.flatnonzero(actions == BATCH_REPLACE)
            if rep.size:
                replacements += int(rep.size)
                rep_slots = sel[rep]
                rep_lines = lines[rep]
                backing[rep_slots] = rep_lines
                rep_deaths = times[rep] + endurance[rep_lines] / weights[rep_slots]
                current_death[rep_slots] = rep_deaths
                if frontier is not None:
                    for slot, death in zip(
                        rep_slots.tolist(), rep_deaths.tolist()
                    ):
                        frontier.push(slot, death)
            ext = np.flatnonzero(actions == BATCH_EXTEND)
            if ext.size:
                replacements += int(ext.size)
                ext_slots = sel[ext]
                ext_deaths = times[ext] + wear[ext] / weights[ext_slots]
                current_death[ext_slots] = ext_deaths
                if frontier is not None:
                    for slot, death in zip(
                        ext_slots.tolist(), ext_deaths.tolist()
                    ):
                        frontier.push(slot, death)
            if removal_positions.size:
                removed_slots = sel[removal_positions]
                current_death[removed_slots] = math.inf
                live_count -= int(removal_positions.size)
                if floor is not None and not math.isinf(floor):
                    # Keep the tightened bound honest: when the last prone
                    # slot at the current maximum weight dies, find the
                    # next maximum among the survivors.
                    dead_w = weights[removed_slots]
                    if np.any(dead_w == w_max_active):
                        if w_max_live < 0:
                            w_max_live = int(
                                np.count_nonzero(
                                    weights[np.isfinite(current_death)]
                                    == w_max_active
                                )
                            )
                        else:
                            w_max_live -= int(
                                np.count_nonzero(dead_w == w_max_active)
                            )
                        if w_max_live == 0:
                            survivors = weights[np.isfinite(current_death)]
                            if survivors.size:
                                w_max_active = float(survivors.max())
                                w_max_live = int(
                                    np.count_nonzero(survivors == w_max_active)
                                )
            if fail_reason is not None:
                current_death[sel[count - 1]] = math.inf

            if self._record_timeline and len(timeline) < self._max_timeline_events:
                room = self._max_timeline_events - len(timeline)
                for k in range(min(count, room)):
                    action = int(actions[k])
                    timeline.append(
                        TimelineEvent(
                            writes_served=float(served_at[k]),
                            slot=int(sel[k]),
                            dead_line=int(dead_lines[k]),
                            action=_ACTION_NAMES[action],
                            replacement_line=int(lines[k])
                            if action == BATCH_REPLACE
                            else None,
                        )
                    )

            if self._metrics is not None:
                self._metrics.observe("sim.epoch_size", count)
            if capacity_failed:
                failure_reason = (
                    f"capacity degraded below user capacity "
                    f"({live_count} < {min_user_slots} slots)"
                )
                break
            if fail_reason is not None:
                failure_reason = fail_reason
                break
            if frontier is None and sequential_ok:
                if count == 1:
                    size1_streak += 1
                    if size1_streak >= SEQUENTIAL_ENTER_STREAK and BATCH_LIMIT > 1:
                        candidate = DeathFrontier(
                            current_death, limit=FRONTIER_LIMIT
                        )
                        if candidate.degenerate:
                            # A minimum tie class wider than the work set
                            # can only keep degenerating; stay vectorized.
                            sequential_ok = False
                        else:
                            frontier = candidate
                            size1_streak = 0
                            regime_switches += 1
                else:
                    size1_streak = 0

        if guard is not None:
            guard.final_check(view)
        extra_meta = {
            "epochs": epochs,
            "sequential_rounds": sequential_rounds,
            "regime_switches": regime_switches,
            "full_scans": full_scans,
        }
        return served, deaths, replacements, failure_reason, timeline, extra_meta


def simulate_lifetime(
    emap: EnduranceMap,
    attack: AttackModel,
    sparing: SpareScheme,
    wearleveler: Optional[WearLeveler] = None,
    fault_model: Optional[FaultModel] = None,
    rng: RandomState = None,
    *,
    engine: str = "fluid-batched",
    record_timeline: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`LifetimeSimulator`."""
    simulator = LifetimeSimulator(
        emap,
        attack,
        sparing,
        wearleveler,
        fault_model,
        rng,
        record_timeline=record_timeline,
        engine=engine,
        metrics=metrics,
        paranoia=paranoia,
        shadow_sample=shadow_sample,
    )
    return simulator.run()
