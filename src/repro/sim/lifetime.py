"""The fluid (mean-field) lifetime engine.

The engine advances a *virtual clock* tau under which the wear on the
line backing slot ``i`` is ``u_i * tau``, where ``u_i`` is the slot's
stationary wear weight from the wear-leveling scheme.  Death events are
processed from a heap; replacements extend a slot's budget, capacity
degradation removes slots.  User writes served are integrated as
``eta * sum(u_alive) dtau`` where ``eta`` is the useful-write fraction
(remap overhead discounts it).

Why this is exact under stationarity: however capacity shrinks, relative
wear rates between surviving slots are fixed by the stationary
distribution, so expressing wear directly in tau (rather than in user-
write time) linearizes every trajectory; the monotone map back to served
writes is the integral above.  The exact per-write
:class:`~repro.sim.reference.ReferenceSimulator` validates the
approximation end to end in the test suite.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional

import numpy as np

from repro.attacks.base import AttackModel
from repro.device.faults import FaultModel
from repro.endurance.emap import EnduranceMap
from repro.sim.result import SimulationResult, TimelineEvent
from repro.sparing.base import (
    ExtendBudget,
    FailDevice,
    RemoveSlot,
    ReplaceWith,
    SpareScheme,
)
from repro.util.rng import RandomState, derive_rng
from repro.wearlevel.base import WearLeveler
from repro.wearlevel.none import NoWearLeveling


class LifetimeSimulator:
    """Fluid lifetime simulation of one device/attack/defence combination.

    Parameters
    ----------
    emap:
        Device endurance map.
    attack:
        Attack or workload model.
    sparing:
        Spare-line replacement scheme (fresh instance; initialized here).
    wearleveler:
        Wear-leveling scheme (fresh instance; attached here); defaults to
        the identity scheme.
    fault_model:
        Optional fault model adjusting effective endurance (e.g. ECP).
    rng:
        Master seed; forked deterministically into per-component streams.
    """

    def __init__(
        self,
        emap: EnduranceMap,
        attack: AttackModel,
        sparing: SpareScheme,
        wearleveler: Optional[WearLeveler] = None,
        fault_model: Optional[FaultModel] = None,
        rng: RandomState = None,
        record_timeline: bool = True,
        max_timeline_events: int = 100_000,
    ) -> None:
        self._emap = emap
        self._attack = attack
        self._sparing = sparing
        self._wl = wearleveler if wearleveler is not None else NoWearLeveling()
        self._fault_model = fault_model if fault_model is not None else FaultModel()
        self._rng = rng
        self._record_timeline = record_timeline
        self._max_timeline_events = max_timeline_events

    def run(self) -> SimulationResult:
        """Simulate until device failure; returns the lifetime result."""
        emap = self._emap
        endurance = self._fault_model.effective_endurance(emap.line_endurance)
        total_endurance = float(endurance.sum())

        sparing_rng = derive_rng(self._rng, "sparing")
        self._sparing.initialize(emap, sparing_rng)
        backing = self._sparing.initial_backing
        slots = backing.size
        min_user_slots = min(self._sparing.min_user_slots, slots)

        wl_rng = derive_rng(self._rng, "wearlevel")
        self._wl.attach(endurance[backing], wl_rng)
        profile = self._attack.profile(slots)
        distribution = self._wl.wear_weights(profile)
        weights = np.asarray(distribution.weights, dtype=float)
        if weights.size != slots:
            raise ValueError(
                f"wear-leveler produced {weights.size} weights for {slots} slots"
            )
        eta = distribution.useful_fraction

        budgets = endurance[backing].astype(float)
        current_death: np.ndarray = np.full(slots, math.inf)
        heap: list[tuple[float, int]] = []
        for slot in range(slots):
            if weights[slot] > 0.0:
                v = budgets[slot] / weights[slot]
                current_death[slot] = v
                heap.append((v, slot))
        heapq.heapify(heap)

        alive = np.ones(slots, dtype=bool)
        active_weight = float(weights.sum())
        served = 0.0
        v_now = 0.0
        deaths = 0
        replacements = 0
        failure_reason = "no wear-prone traffic (simulation degenerate)"
        timeline: list[TimelineEvent] = []

        def record(slot: int, dead_line: int, action: str, replacement: int | None) -> None:
            if self._record_timeline and len(timeline) < self._max_timeline_events:
                timeline.append(
                    TimelineEvent(
                        writes_served=served,
                        slot=slot,
                        dead_line=dead_line,
                        action=action,
                        replacement_line=replacement,
                    )
                )

        while heap:
            v, slot = heapq.heappop(heap)
            if not alive[slot] or v != current_death[slot]:
                continue  # stale entry
            served += (v - v_now) * active_weight * eta
            v_now = v
            deaths += 1
            dead_line = int(backing[slot])

            outcome = self._sparing.replace(slot, dead_line)
            if isinstance(outcome, ReplaceWith):
                replacements += 1
                backing[slot] = outcome.line
                extra = float(endurance[outcome.line])
                new_death = v_now + extra / weights[slot]
                current_death[slot] = new_death
                heapq.heappush(heap, (new_death, slot))
                record(slot, dead_line, "replaced", outcome.line)
                continue
            if isinstance(outcome, ExtendBudget):
                replacements += 1
                new_death = v_now + outcome.wear / weights[slot]
                current_death[slot] = new_death
                heapq.heappush(heap, (new_death, slot))
                record(slot, dead_line, "extended", None)
                continue
            if isinstance(outcome, RemoveSlot):
                alive[slot] = False
                active_weight -= float(weights[slot])
                current_death[slot] = math.inf
                record(slot, dead_line, "removed", None)
                live_count = int(alive.sum())
                if live_count < min_user_slots:
                    failure_reason = (
                        f"capacity degraded below user capacity "
                        f"({live_count} < {min_user_slots} slots)"
                    )
                    break
                continue
            assert isinstance(outcome, FailDevice)
            failure_reason = outcome.reason
            record(slot, dead_line, "device-failed", None)
            break
        else:
            if deaths > 0:
                failure_reason = "all wear-prone slots exhausted"

        metadata = {
            "attack": self._attack.describe(),
            "wearleveler": self._wl.describe(),
            "sparing": self._sparing.describe(),
            "fault_model": self._fault_model.describe(),
            "slots": slots,
            "engine": "fluid",
        }
        return SimulationResult(
            writes_served=served,
            total_endurance=total_endurance,
            deaths=deaths,
            replacements=replacements,
            failure_reason=failure_reason,
            metadata=metadata,
            timeline=tuple(timeline),
        )


def simulate_lifetime(
    emap: EnduranceMap,
    attack: AttackModel,
    sparing: SpareScheme,
    wearleveler: Optional[WearLeveler] = None,
    fault_model: Optional[FaultModel] = None,
    rng: RandomState = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`LifetimeSimulator`."""
    simulator = LifetimeSimulator(
        emap, attack, sparing, wearleveler, fault_model, rng
    )
    return simulator.run()
