"""Monte-Carlo lifetime studies: many seeds, confidence intervals.

A single lifetime simulation carries sampling variance from three
sources: endurance-map placement, randomized wear-leveling, and random
spare selection.  The paper reports single numbers; a reproduction should
also report how tight they are.  :func:`monte_carlo_lifetime` runs one
configuration across independently seeded replicas and summarizes the
normalized lifetime with a mean, standard deviation and a normal-theory
confidence interval.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.attacks.base import AttackModel
from repro.endurance.emap import EnduranceMap
from repro.obs.metrics import MetricsRegistry
from repro.sim.config import ExperimentConfig
from repro.sim.resilience import Checkpoint, ResiliencePolicy
from repro.sim.result import SimulationResult
from repro.sim.runner import CallableTask, SimRunner
from repro.sparing.base import SpareScheme
from repro.util.rng import fork_seeds
from repro.util.validation import require_positive_int
from repro.wearlevel.base import WearLeveler

#: Two-sided z-scores for the confidence levels we support.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class MonteCarloResult:
    """Summary of a multi-seed lifetime study.

    Attributes
    ----------
    lifetimes:
        Per-replica normalized lifetimes, in seed order.
    confidence:
        Confidence level of :attr:`ci_low` / :attr:`ci_high`.
    results:
        The underlying per-replica results (metadata, death counts, ...).
    """

    lifetimes: np.ndarray
    confidence: float
    results: Sequence[SimulationResult]

    @property
    def replicas(self) -> int:
        """Number of replicas run."""
        return int(self.lifetimes.size)

    @property
    def mean(self) -> float:
        """Mean normalized lifetime."""
        return float(self.lifetimes.mean())

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single replica)."""
        if self.replicas < 2:
            return 0.0
        return float(self.lifetimes.std(ddof=1))

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.replicas)

    @property
    def ci_half_width(self) -> float:
        """Half-width of the normal-theory confidence interval."""
        return _Z_SCORES[self.confidence] * self.standard_error

    @property
    def ci_low(self) -> float:
        """Lower confidence bound on the mean."""
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        """Upper confidence bound on the mean."""
        return self.mean + self.ci_half_width

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} ± {self.ci_half_width:.4f} "
            f"({self.confidence:.0%} CI, n={self.replicas})"
        )


#: Replica seeds are folded into the 31-bit config-seed space below;
#: :func:`monte_carlo_lifetime` forks them pairwise distinct modulo this
#: so no two replicas can silently share an endurance map.
EMAP_SEED_MOD: int = 2**31


@dataclass(frozen=True)
class _ConfigEmapFactory:
    """Default per-replica endurance-map builder (picklable, unlike the
    equivalent closure, so replicas can fan out over worker processes)."""

    config: ExperimentConfig

    def __call__(self, seed: int) -> EnduranceMap:
        return self.config.with_(seed=seed % EMAP_SEED_MOD).make_emap()


def monte_carlo_lifetime(
    attack_factory: Callable[[], AttackModel],
    sparing_factory: Callable[[], SpareScheme],
    *,
    config: Optional[ExperimentConfig] = None,
    emap_factory: Optional[Callable[[int], EnduranceMap]] = None,
    wearleveler_factory: Optional[Callable[[], WearLeveler]] = None,
    replicas: int = 10,
    confidence: float = 0.95,
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
    engine: str = "fluid-batched",
    trials_per_task: Optional[int] = None,
    backend: object = None,
) -> MonteCarloResult:
    """Run ``replicas`` independently seeded lifetime simulations.

    Factories (rather than instances) are required because schemes carry
    per-run mutable state; each replica gets fresh instances and a seed
    forked from ``config.seed``.

    Parameters
    ----------
    attack_factory / sparing_factory / wearleveler_factory:
        Zero-argument constructors for the run's components.
    config:
        Base configuration (device shape, master seed).
    emap_factory:
        Optional per-replica endurance-map builder ``seed -> EnduranceMap``;
        defaults to the config's map rebuilt with the replica seed, so
        placement variance is part of the study.
    replicas:
        Number of independent runs.
    confidence:
        One of 0.90, 0.95, 0.99.
    jobs:
        Worker processes for the replica fan-out (1 = serial, 0/None =
        all CPUs).  Replica seeds are forked up front, so results are
        identical in any job count; unpicklable factories (lambdas,
        closures) silently fall back to serial execution.
    policy:
        Supervision policy (timeouts, retries, crash isolation); see
        :class:`~repro.sim.resilience.ResiliencePolicy`.
    checkpoint:
        Optional resume checkpoint (or journal path): finished replicas
        stream to it and a re-invocation skips them.
    paranoia / shadow_sample:
        State-integrity verification knobs applied to every replica (see
        :mod:`repro.verify`); results are bit-identical across levels.
    engine:
        Lifetime engine for every replica.  ``"fluid-ensemble"`` advances
        many replicas per kernel pass (each still bit-identical to its
        solo ``"fluid-batched"`` run) -- the fast choice for large
        replica counts.
    trials_per_task:
        Replicas per ensemble chunk (``"fluid-ensemble"`` only); ``None``
        auto-sizes to ``ceil(replicas / jobs)`` so chunking and process
        parallelism compose.  See :class:`~repro.sim.runner.SimRunner`.
    """
    require_positive_int(replicas, "replicas")
    if confidence not in _Z_SCORES:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        )
    config = config if config is not None else ExperimentConfig()

    if emap_factory is None:
        emap_factory = _ConfigEmapFactory(config)

    # Replica seeds are 63-bit but the default emap factory folds them
    # into the 31-bit config-seed space; two seeds colliding after the
    # fold would silently simulate the same placement twice, so the fork
    # guarantees pairwise distinctness modulo the fold.
    seeds = fork_seeds(
        config.seed, replicas, "monte-carlo", distinct_mod=EMAP_SEED_MOD
    )
    tasks = [
        CallableTask(
            attack_factory=attack_factory,
            sparing_factory=sparing_factory,
            emap_factory=emap_factory,
            seed=seed,
            wearleveler_factory=wearleveler_factory,
            engine=engine,
            paranoia=paranoia,
            shadow_sample=shadow_sample,
            label=f"replica-{index}",
        )
        for index, seed in enumerate(seeds)
    ]
    results = SimRunner(
        jobs=jobs,
        policy=policy,
        checkpoint=checkpoint,
        metrics=metrics,
        trials_per_task=trials_per_task,
        backend=backend,
    ).run(tasks)
    lifetimes = np.array([result.normalized_lifetime for result in results])
    return MonteCarloResult(
        lifetimes=lifetimes, confidence=confidence, results=tuple(results)
    )
