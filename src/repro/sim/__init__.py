"""Lifetime simulation (the paper's "NVMsim").

The paper evaluates every scheme with a simulator that "generates the
read/write requests according to the attack models" and reports the
*normalized lifetime*: total writes served before the device fails,
divided by the summed endurance of all memory lines.

Two simulators are provided:

* :class:`~repro.sim.lifetime.LifetimeSimulator` -- the fluid
  (mean-field) engine, in two interchangeable implementations (see
  :data:`~repro.sim.lifetime.ENGINES`): the vectorized ``fluid-batched``
  epoch kernel (default) and the scalar ``fluid-exact`` event loop kept
  for differential testing.  Wear-leveling schemes contribute their
  stationary wear distribution, sparing schemes handle deaths through the
  batched (or scalar) replacement API, and lifetimes are computed exactly
  under the stationary approximation.  This is what all benchmark
  figures use.
* :class:`~repro.sim.reference.ReferenceSimulator` -- an exact per-write
  simulator over a real :class:`~repro.device.bank.NVMBank` with real
  wear-leveling mechanisms.  Slow, so used on small devices to validate
  the fluid engine (see ``tests/sim/test_fluid_vs_reference.py``).

:mod:`repro.sim.experiments` holds the paper's experiment configurations
and the sweep drivers behind Figures 6-8.
"""

from repro.sim.cache import CACHE_SCHEMA_VERSION, CacheStats, ResultCache
from repro.sim.config import ExperimentConfig, default_endurance_map
from repro.sim.lifetime import (
    ENGINES,
    LifetimeSimulator,
    normalize_engine,
    simulate_lifetime,
)
from repro.sim.reference import ReferenceSimulator
from repro.sim.result import SimulationResult
from repro.sim.runner import (
    CallableTask,
    RunnerStats,
    SimRunner,
    SimTask,
    fork_task_seeds,
)
from repro.sim.experiments import (
    bpa_scheme_comparison,
    spare_fraction_sweep,
    swr_fraction_sweep,
    uaa_scheme_comparison,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ResultCache",
    "ExperimentConfig",
    "default_endurance_map",
    "ENGINES",
    "LifetimeSimulator",
    "normalize_engine",
    "simulate_lifetime",
    "ReferenceSimulator",
    "SimulationResult",
    "CallableTask",
    "RunnerStats",
    "SimRunner",
    "SimTask",
    "fork_task_seeds",
    "bpa_scheme_comparison",
    "spare_fraction_sweep",
    "swr_fraction_sweep",
    "uaa_scheme_comparison",
]
