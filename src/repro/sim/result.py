"""Simulation results, failure timelines, and the normalized-lifetime metric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple


@dataclass(frozen=True)
class TimelineEvent:
    """One wear-out event in a simulation's failure timeline.

    Attributes
    ----------
    writes_served:
        User writes completed when the event occurred.
    slot:
        The affected user slot.
    dead_line:
        The physical line that wore out.
    action:
        What the sparing scheme did: ``"replaced"``, ``"extended"``,
        ``"removed"`` or ``"device-failed"``.
    replacement_line:
        The new backing line for ``"replaced"`` events.
    """

    writes_served: float
    slot: int
    dead_line: int
    action: str
    replacement_line: Optional[int] = None


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one lifetime simulation.

    Attributes
    ----------
    writes_served:
        User writes completed before the device failed.
    total_endurance:
        Summed effective endurance of every physical line (ideal lifetime
        under perfect endurance-proportional wear).
    deaths:
        Line wear-out events before failure.
    replacements:
        Successful spare-line replacements.
    failure_reason:
        Why the device was declared worn out.
    metadata:
        Scheme/attack labels and configuration echoes for reporting.
    """

    writes_served: float
    total_endurance: float
    deaths: int
    replacements: int
    failure_reason: str
    metadata: Mapping[str, object] = field(default_factory=dict)
    timeline: Tuple[TimelineEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.writes_served < 0:
            raise ValueError(f"writes_served must be >= 0, got {self.writes_served}")
        if self.total_endurance <= 0:
            raise ValueError(
                f"total_endurance must be > 0, got {self.total_endurance}"
            )

    @property
    def normalized_lifetime(self) -> float:
        """The paper's metric: writes served / total endurance."""
        return self.writes_served / self.total_endurance

    def improvement_over(self, baseline: "SimulationResult | float") -> float:
        """Lifetime ratio versus a baseline result (the paper's "9.5X")."""
        reference = (
            baseline.normalized_lifetime
            if isinstance(baseline, SimulationResult)
            else float(baseline)
        )
        if reference <= 0:
            raise ValueError("baseline lifetime must be positive")
        return self.normalized_lifetime / reference

    def label(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Convenience metadata accessor."""
        value = self.metadata.get(key, default)
        return None if value is None else str(value)

    def first_death_fraction(self) -> Optional[float]:
        """When (as a lifetime fraction) the first wear-out occurred.

        A small value with a long total lifetime indicates the defence
        spent most of the device's life absorbing failures -- the
        intended behaviour of a sparing scheme; ``None`` if nothing died.
        """
        if not self.timeline:
            return None
        if self.writes_served == 0:
            return 0.0
        return self.timeline[0].writes_served / self.writes_served

    def deaths_by_action(self) -> Mapping[str, int]:
        """Timeline event counts grouped by the sparing scheme's action."""
        counts: dict[str, int] = {}
        for event in self.timeline:
            counts[event.action] = counts.get(event.action, 0) + 1
        return counts

    def __str__(self) -> str:
        return (
            f"SimulationResult(normalized={self.normalized_lifetime:.3%}, "
            f"deaths={self.deaths}, replacements={self.replacements}, "
            f"reason={self.failure_reason!r})"
        )

    # ------------------------------------------------------------------
    # Serialization (experiment archiving)
    # ------------------------------------------------------------------

    def to_dict(self, *, include_timeline: bool = True) -> dict:
        """Plain-JSON-serializable representation of this result."""
        payload: dict = {
            "writes_served": float(self.writes_served),
            "total_endurance": float(self.total_endurance),
            "normalized_lifetime": float(self.normalized_lifetime),
            "deaths": self.deaths,
            "replacements": self.replacements,
            "failure_reason": self.failure_reason,
            "metadata": {key: str(value) for key, value in self.metadata.items()},
        }
        if include_timeline:
            payload["timeline"] = [
                {
                    "writes_served": float(event.writes_served),
                    "slot": event.slot,
                    "dead_line": event.dead_line,
                    "action": event.action,
                    "replacement_line": event.replacement_line,
                }
                for event in self.timeline
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``normalized_lifetime`` in the payload is redundant (derived) and
        validated against the reconstructed value.
        """
        timeline = tuple(
            TimelineEvent(
                writes_served=event["writes_served"],
                slot=event["slot"],
                dead_line=event["dead_line"],
                action=event["action"],
                replacement_line=event.get("replacement_line"),
            )
            for event in payload.get("timeline", [])
        )
        result = cls(
            writes_served=payload["writes_served"],
            total_endurance=payload["total_endurance"],
            deaths=payload["deaths"],
            replacements=payload["replacements"],
            failure_reason=payload["failure_reason"],
            metadata=dict(payload.get("metadata", {})),
            timeline=timeline,
        )
        recorded = payload.get("normalized_lifetime")
        if recorded is not None and abs(recorded - result.normalized_lifetime) > 1e-9:
            raise ValueError(
                f"payload normalized_lifetime {recorded} is inconsistent with "
                f"writes/endurance ({result.normalized_lifetime})"
            )
        return result
