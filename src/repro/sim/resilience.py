"""Resilient execution primitives: retry policies, failure records,
serial time limits, and crash-safe JSONL checkpoints.

The paper's lifetime campaigns (UAA/BPA sweeps, Monte-Carlo batches) run
thousands of independent simulations for hours.  At that scale partial
failure is the norm -- a worker OOM-kills, a box reboots mid-sweep, a
cache file is truncated by a full disk -- and losing every completed
result to one bad task is unacceptable.  This module supplies the
building blocks the supervised :class:`~repro.sim.runner.SimRunner`
composes:

* :class:`ResiliencePolicy` -- per-task wall-clock timeout, bounded
  retries with exponential backoff and deterministic jitter, and the
  fail-fast/keep-going switch;
* :class:`FailureRecord` -- the structured post-mortem of a task that
  exhausted its attempts (key, attempts, last exception + traceback,
  timing) returned instead of raising;
* :class:`Checkpoint` -- an append-only JSONL journal of completed task
  results, content-keyed like the result cache, written with
  flush+fsync per record so a ``kill -9`` mid-sweep loses at most the
  record being written; loading tolerates a truncated final line;
* :func:`time_limit` -- a wall-clock guard for *serial* execution
  (parallel execution enforces deadlines in the supervisor by
  respawning the pool instead).  On a POSIX main thread it preempts
  via SIGALRM; on any other thread -- the async service's executor
  threads, embedding hosts -- a watchdog timer injects the timeout
  into the guarded thread and a monotonic deadline check backstops
  bodies that cannot be preempted.

Determinism note: backoff jitter is derived from the task key and
attempt number, never from a wall clock or global RNG, so a resumed or
re-run campaign schedules retries identically.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import traceback as _traceback
from contextlib import contextmanager
from time import monotonic
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, maybe_span
from repro.sim.result import SimulationResult
from repro.verify.invariants import InvariantViolation

#: Schema version of the checkpoint journal; bumping it orphans (ignores)
#: entries written by incompatible versions.
CHECKPOINT_SCHEMA_VERSION: int = 1

#: Default directory for CLI-managed checkpoints.
DEFAULT_CHECKPOINT_DIR: str = ".repro-checkpoints"


class TaskTimeout(RuntimeError):
    """A task exceeded its per-attempt wall-clock budget."""


class CheckpointWriteError(RuntimeError):
    """A checkpoint journal append failed (disk full, permissions, ...).

    Carries the ledger ``path`` so the operator knows exactly which
    journal is unwritable.  Non-retryable by design: if the disk is full
    re-running the task just burns its retry budget against the same
    failing ``fsync``.
    """

    #: Honored by :func:`is_retryable` ahead of the type-based rules.
    retryable = False

    def __init__(self, path: "str | Path", cause: BaseException) -> None:
        self.path = Path(path)
        self.cause = cause
        super().__init__(
            f"checkpoint journal {self.path} is unwritable: "
            f"{type(cause).__name__}: {cause}"
        )


class SimulationFailure(RuntimeError):
    """One or more tasks exhausted their attempts.

    Raised by :meth:`SimRunner.run` (the raise-on-error surface); the
    keep-going surface :meth:`SimRunner.run_detailed` returns the same
    :class:`FailureRecord` list inside its stats instead.
    """

    def __init__(self, failures: Tuple["FailureRecord", ...]) -> None:
        self.failures = failures
        preview = "; ".join(str(record) for record in failures[:3])
        suffix = " ..." if len(failures) > 3 else ""
        super().__init__(f"{len(failures)} task(s) failed: {preview}{suffix}")


class RunInterrupted(KeyboardInterrupt):
    """SIGINT/SIGTERM stopped a run; carries the partial results.

    Subclasses :class:`KeyboardInterrupt` so ``except Exception`` blocks
    never swallow it; the partial ``results`` (``None`` for unfinished
    tasks) and ``stats`` let callers report completed work and point the
    user at the resumable checkpoint.
    """

    def __init__(self, results: List[Optional[SimulationResult]], stats) -> None:
        self.results = results
        self.stats = stats
        super().__init__("simulation run interrupted")


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the runner supervises each task.

    Attributes
    ----------
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = unlimited).
        Parallel runs enforce it by tearing down and respawning the
        worker pool; serial runs use :func:`time_limit` (SIGALRM on a
        POSIX main thread, a watchdog + monotonic deadline elsewhere).
    retries:
        Extra attempts after the first (``retries=2`` means up to three
        executions).  Non-retryable errors (``ValueError``/``TypeError``
        -- spec bugs, not infrastructure) fail immediately.
    backoff / backoff_cap:
        Exponential retry delay: ``backoff * 2**(attempt-1)`` seconds,
        capped at ``backoff_cap``.
    jitter:
        Fractional deterministic jitter on the delay (0.25 = up to +25%),
        derived from the task key + attempt so schedules reproduce.
    fail_fast:
        Stop dispatching new work after the first task exhausts its
        attempts (remaining tasks are recorded as ``skipped``).  The
        default keeps going and reports every failure at the end.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0 or None, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff and backoff_cap must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        """Total execution attempts a task is allowed."""
        return self.retries + 1

    def retry_delay(self, key: str, attempt: int) -> float:
        """Backoff before re-running ``key``'s attempt ``attempt`` (>= 1).

        Deterministic: exponential in the attempt number with jitter
        hashed from ``(key, attempt)``.
        """
        if self.backoff <= 0.0:
            return 0.0
        base = min(self.backoff * (2.0 ** max(attempt - 1, 0)), self.backoff_cap)
        if self.jitter <= 0.0:
            return base
        digest = hashlib.sha256(f"backoff:{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "little") / 2**64
        return base * (1.0 + self.jitter * unit)


def is_retryable(error: BaseException) -> bool:
    """Whether an attempt failure is worth retrying.

    An explicit boolean ``retryable`` attribute on the exception wins
    (remote workers ship their verdict across the wire this way, and
    :class:`CheckpointWriteError` pins itself non-retryable).  Otherwise
    ``ValueError``/``TypeError`` indicate a bad spec and an
    :class:`~repro.verify.invariants.InvariantViolation` is deterministic
    in the task -- retrying either only wastes the budget.  Everything
    else (injected or real transient errors, timeouts, crashed workers)
    retries.
    """
    verdict = getattr(error, "retryable", None)
    if isinstance(verdict, bool):
        return verdict
    return not isinstance(error, (ValueError, TypeError, InvariantViolation))


@dataclass(frozen=True)
class FailureRecord:
    """Structured post-mortem of one unfinished task.

    Attributes
    ----------
    index:
        Position of the task in the submitted list.
    key:
        The task's stable content key (checkpoint/cache key).
    label:
        The task's cosmetic label, for human-readable reports.
    kind:
        Terminal failure class: ``"exception"``, ``"timeout"``,
        ``"crash"``, ``"interrupted"``, or ``"skipped"`` (fail-fast).
    attempts:
        Execution attempts consumed.
    exception_type / message / traceback:
        The last attempt's error, stringified for transport across
        process boundaries and JSON archives.
    elapsed_seconds:
        Wall time spent on the task across all attempts (best effort).
    """

    index: int
    key: str
    label: str
    kind: str
    attempts: int
    exception_type: str = ""
    message: str = ""
    traceback: str = ""
    elapsed_seconds: float = 0.0

    @classmethod
    def from_exception(
        cls,
        index: int,
        key: str,
        label: str,
        kind: str,
        attempts: int,
        error: BaseException,
        elapsed_seconds: float = 0.0,
    ) -> "FailureRecord":
        """Build a record from a live exception (traceback included)."""
        return cls(
            index=index,
            key=key,
            label=label,
            kind=kind,
            attempts=attempts,
            exception_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                _traceback.format_exception(type(error), error, error.__traceback__)
            ),
            elapsed_seconds=elapsed_seconds,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (archives, CLI reports)."""
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "attempts": self.attempts,
            "exception_type": self.exception_type,
            "message": self.message,
            "traceback": self.traceback,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def __str__(self) -> str:
        what = self.exception_type or self.kind
        label = self.label or f"task #{self.index}"
        return f"{label} [{self.kind}] after {self.attempts} attempt(s): {what}: {self.message}"


# ----------------------------------------------------------------------
# Serial wall-clock guard
# ----------------------------------------------------------------------


def _alarm_supported() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _async_raise(thread_id: int, exc_type: "type | None") -> None:
    """Schedule ``exc_type`` in thread ``thread_id`` (``None`` clears).

    Uses ``PyThreadState_SetAsyncExc``: the exception is delivered at the
    target thread's next bytecode instruction, so it preempts pure-Python
    loops but not a body blocked inside a C call (which the caller's
    monotonic deadline check covers instead).  Best effort -- platforms
    without ``ctypes.pythonapi`` simply skip the injection.
    """
    try:
        import ctypes

        if exc_type is None:
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(thread_id), ctypes.c_void_p()
            )
        else:
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(thread_id), ctypes.py_object(exc_type)
            )
    except Exception:  # pragma: no cover - exotic interpreters only
        pass


@contextmanager
def _sigalrm_limit(seconds: float) -> Iterator[None]:
    """The historical main-thread fast path: preemptive SIGALRM."""

    def _on_alarm(signum, frame):
        raise TaskTimeout(f"task exceeded its {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@contextmanager
def _deadline_limit(seconds: float) -> Iterator[None]:
    """Thread-safe deadline guard for non-main threads.

    ``signal.signal``/``setitimer`` raise ``ValueError`` off the main
    thread, so threaded hosts (the job service's executor threads) need a
    different mechanism.  A daemon watchdog timer injects
    :class:`TaskTimeout` into the guarded thread at the deadline --
    preempting Python-level work -- and a final monotonic check converts
    any overrun that escaped injection (body blocked in C, injection
    unavailable) into the same :class:`TaskTimeout`, so the budget is
    enforced in every case even when it cannot preempt.
    """
    thread_id = threading.get_ident()
    lock = threading.Lock()
    state = {"fired": False, "done": False}

    def _fire() -> None:
        with lock:
            if state["done"]:
                return
            state["fired"] = True
        _async_raise(thread_id, TaskTimeout)

    watchdog = threading.Timer(seconds, _fire)
    watchdog.daemon = True
    started = monotonic()
    watchdog.start()
    try:
        yield
    except TaskTimeout:
        raise TaskTimeout(
            f"task exceeded its {seconds:g}s wall-clock budget"
        ) from None
    finally:
        with lock:
            state["done"] = True
        watchdog.cancel()
        if state["fired"]:
            # Clear an injected-but-undelivered exception so it cannot
            # surface later in unrelated code on this thread.
            _async_raise(thread_id, None)
    if monotonic() - started > seconds:
        raise TaskTimeout(f"task exceeded its {seconds:g}s wall-clock budget")


@contextmanager
def time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`TaskTimeout` if the body runs longer than ``seconds``.

    On a POSIX main thread the guard is SIGALRM-based, preempting even a
    sleeping/hung body.  On any other thread (async service executor
    threads, embedding hosts) a watchdog timer injects the timeout into
    the guarded thread and a monotonic deadline check backstops bodies
    the injection cannot preempt -- so a budget overrun always surfaces
    as :class:`TaskTimeout`, never as a silent unguarded run.  With
    ``seconds=None`` the body runs unguarded.  Parallel execution does
    not use this: the pool supervisor enforces deadlines from outside.
    """
    if seconds is None:
        yield
        return
    if _alarm_supported():
        with _sigalrm_limit(seconds):
            yield
        return
    with _deadline_limit(seconds):
        yield


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


class Checkpoint:
    """Append-only JSONL journal of completed task results.

    Each record is one line ``{"key", "label", "elapsed_seconds",
    "result"}``; the first line is a schema header.  Records are
    content-keyed exactly like the result cache, so resuming matches
    tasks by what they compute, not by position -- reordering or
    extending a sweep still reuses every completed entry.

    Crash safety: every append is flushed and fsynced, and loading stops
    at (and ignores) a torn final line, so the journal survives
    ``kill -9`` at any instant with at most the in-flight record lost.

    Parameters
    ----------
    path:
        Journal location; parent directories are created on first write.
    resume:
        When true (default), existing entries are loaded and served;
        when false an existing journal is discarded and started fresh.
    """

    def __init__(self, path: "str | Path", *, resume: bool = True) -> None:
        self._path = Path(path)
        self._entries: Dict[str, Tuple[SimulationResult, float, str]] = {}
        self._hits = 0
        self._appends = 0
        self._header_written = False
        self._metrics: Optional[MetricsRegistry] = None
        if resume:
            self._load()
        elif self._path.exists():
            self._path.unlink()

    def attach_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        """Record ``checkpoint/append`` spans and hit/append counters into
        ``metrics`` from now on (``None`` detaches)."""
        self._metrics = metrics

    @property
    def path(self) -> Path:
        """Journal file location."""
        return self._path

    @property
    def hits(self) -> int:
        """Lookups served from the journal by this instance."""
        return self._hits

    @property
    def appends(self) -> int:
        """Records appended by this instance."""
        return self._appends

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        """Keys of every loaded/appended record."""
        return list(self._entries)

    def get(self, key: str) -> Optional[SimulationResult]:
        """The completed result stored under ``key``, if any."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._hits += 1
        if self._metrics is not None:
            self._metrics.inc("checkpoint.hits")
        return entry[0]

    def append(
        self,
        key: str,
        result: SimulationResult,
        elapsed: float = 0.0,
        label: str = "",
    ) -> None:
        """Journal one completed task (flush + fsync; idempotent per key)."""
        if key in self._entries:
            return
        with maybe_span(self._metrics, "checkpoint/append"):
            record = {
                "key": key,
                "label": label,
                "elapsed_seconds": float(elapsed),
                "result": result.to_dict(include_timeline=False),
            }
            try:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                with open(self._path, "a", encoding="utf-8") as handle:
                    if not self._header_written and handle.tell() == 0:
                        handle.write(
                            json.dumps(
                                {"checkpoint_schema": CHECKPOINT_SCHEMA_VERSION}
                            )
                        )
                        handle.write("\n")
                    self._header_written = True
                    handle.write(json.dumps(record, default=str))
                    handle.write("\n")
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError as error:
                # Disk full / permissions / dead mount: surface a typed,
                # non-retryable failure naming the ledger instead of a
                # raw OSError escaping mid-run.
                raise CheckpointWriteError(self._path, error) from error
            self._entries[key] = (result, float(elapsed), label)
            self._appends += 1
            if self._metrics is not None:
                self._metrics.inc("checkpoint.appends")

    def _load(self) -> None:
        entries = _read_journal_entries(self._path)
        if entries is None:
            return
        self._header_written = True
        self._entries.update(entries)

    # ------------------------------------------------------------------
    # Per-shard ledgers (multi-host fabric)
    # ------------------------------------------------------------------

    def shard_path(self, shard: "str | int") -> Path:
        """The shard ledger location for ``shard`` next to this journal.

        Fabric workers journal into ``<primary>.shard-<id>`` files of the
        same JSONL format (torn-tail tolerance included), so concurrent
        shards of one sweep never contend on -- or collide with -- the
        primary journal.  :meth:`merge_shards` folds them back in.
        """
        return _shard_path(self._path, shard)

    def merge_shards(self, *, remove: bool = True) -> int:
        """Deterministically merge every sibling shard ledger into this
        journal; returns the number of records absorbed.

        Shards are visited in sorted path order and records in file
        order, so the merge result is independent of worker scheduling;
        appends stay idempotent per content key, so a record committed
        both remotely and via a shard ledger lands exactly once.  Each
        shard's torn final line (worker killed mid-append) is skipped,
        preserving per-shard crash tolerance.  With ``remove`` (default)
        an absorbed shard file is deleted -- every surviving record is
        now fsynced in the primary journal.
        """
        merged = 0
        for path in sorted(self._path.parent.glob(self._path.name + ".shard-*")):
            entries = _read_journal_entries(path)
            if entries is None:
                continue
            for key, (result, elapsed, label) in entries.items():
                if key not in self._entries:
                    self.append(key, result, elapsed, label)
                    merged += 1
            if remove:
                try:
                    path.unlink()
                except OSError:
                    pass  # best effort; a leftover shard re-merges later
        if merged and self._metrics is not None:
            self._metrics.inc("checkpoint.shard_merged_records", merged)
        return merged


def _shard_path(primary: Path, shard: "str | int") -> Path:
    """``<primary>.shard-<id>``; rejects ids that would escape the dir."""
    shard_text = str(shard)
    if not shard_text or any(ch in shard_text for ch in "/\\\0"):
        raise ValueError(f"invalid shard discriminator {shard!r}")
    return primary.with_name(f"{primary.name}.shard-{shard_text}")


def _read_journal_entries(
    path: Path,
) -> "Dict[str, Tuple[SimulationResult, float, str]] | None":
    """Parse one journal file in record order; ``None`` if unusable.

    Shared by primary-journal resume and shard-ledger merge.  A torn or
    foreign header orphans the whole file; a torn or corrupted record
    line (kill mid-append) is skipped without losing earlier records.
    """
    if not path.exists():
        return None
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return None
    if not lines:
        return None
    try:
        header = json.loads(lines[0])
    except ValueError:
        return None
    if not isinstance(header, dict) or (
        header.get("checkpoint_schema") != CHECKPOINT_SCHEMA_VERSION
    ):
        return None
    entries: Dict[str, Tuple[SimulationResult, float, str]] = {}
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            key = record["key"]
            result = SimulationResult.from_dict(record["result"])
        except (ValueError, KeyError, TypeError):
            continue
        entries[key] = (
            result,
            float(record.get("elapsed_seconds", 0.0)),
            str(record.get("label", "")),
        )
    return entries


def derive_checkpoint_path(
    name: str,
    payload: dict,
    root: "str | Path | None" = None,
    shard: "str | int | None" = None,
    run_id: "str | None" = None,
) -> Path:
    """Deterministic checkpoint location for a named, parameterized run.

    Hashes ``payload`` (canonical JSON) so the same command with the
    same configuration always maps to the same journal -- which is what
    lets a bare ``--resume`` find the previous run's checkpoint without
    the user tracking file names.

    The journal assumes a **single writer**: two processes appending the
    same file concurrently interleave fsynced records unpredictably.  A
    lone operator re-running a command never hits this, but two
    *concurrent* runs submitting the identical payload (two service jobs
    with the same spec batch) would collide on the derived path.  Such
    callers must pass ``run_id`` -- a per-run identity (job id) folded
    into the file name (``<name>-<digest>-<run_id>.jsonl``) -- so every
    concurrent writer owns its own ledger while a *restart* of the same
    run (same ``run_id``) still resumes it.

    ``shard`` appends a per-shard discriminator *after* every other
    component, so the fully-qualified form is
    ``<name>-<digest>[-<run_id>].jsonl.shard-<id>`` -- identical to
    ``Checkpoint(derive_checkpoint_path(name, payload, root, run_id=
    run_id)).shard_path(shard)``.  Concurrent shards of one sweep --
    fabric workers, split grids -- therefore never collide on a ledger
    file while still globbing next to their primary journal for
    :meth:`Checkpoint.merge_shards`.  Shard writers open their ledger
    with ``resume=True``: a shard id re-used after a crash (a re-spawned
    worker, a rebuilt coordinator) must *extend* the pre-crash shard,
    never clobber it, so the eventual merge absorbs both generations
    idempotently.
    """
    if root is None:
        root = os.environ.get("REPRO_CHECKPOINT_DIR", DEFAULT_CHECKPOINT_DIR)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    digest = hashlib.sha256(f"{name}:{blob}".encode()).hexdigest()[:12]
    stem = f"{name}-{digest}"
    if run_id is not None:
        run_text = str(run_id)
        if not run_text or any(ch in run_text for ch in "/\\\0"):
            raise ValueError(f"invalid run_id discriminator {run_id!r}")
        stem = f"{stem}-{run_text}"
    primary = Path(root) / f"{stem}.jsonl"
    if shard is None:
        return primary
    return _shard_path(primary, shard)
