"""Incremental death-frontier index for the fluid lifetime engines.

Both engines repeatedly answer one question: *which slots die next?*
The scalar engine keeps a heap; the batched engine rescans the whole
``current_death`` array per epoch, which degenerates to O(slots) per
death under concentrated-wear attacks (BPA) where every epoch holds a
single death.  :class:`DeathFrontier` makes that question incremental:

* a **lazy-deletion binary heap** of ``(death time, slot)`` tuples whose
  comparison order is exactly the batched kernel's
  ``np.lexsort((slots, times))`` -- tuple comparison breaks time ties by
  slot id -- and exactly the scalar engine's heap order;
* **staleness by consultation**: the engine mutates its authoritative
  ``current_death`` array as it always did, and an entry is valid only
  while its recorded time still equals the array's (removed slots go to
  ``inf`` and invalidate implicitly);
* an optional **bounded work set**: with ``limit`` set, only the slots
  strictly below the ``(limit+1)``-th smallest death time are indexed
  and the threshold is kept as a *sentinel*; every excluded slot's time
  is ``>= sentinel``, so any epoch whose chronological bound stays at or
  below the sentinel provably sees the full array's selection.  When the
  work set drains, it is rebuilt from the array (a *refresh*); when the
  heap outgrows its cap with stale entries, it is rebuilt in place (a
  *compaction* -- the scalar engine's historical ``heap_compactions``).

:meth:`pop_epoch` pops one chronologically safe epoch in exact
``(time, slot)`` order, or returns ``None`` whenever it cannot *prove*
the epoch identical to the vectorized selection (epoch bound past the
sentinel, batch regrown past the caller's cap, or a degenerate tie
class larger than the work set).  Callers fall back to the full scan on
``None``, so the index is an accelerator, never a semantic change.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["DeathFrontier"]


class DeathFrontier:
    """Lazy-deletion heap over an authoritative death-time array.

    Parameters
    ----------
    times:
        The engine's ``current_death`` array.  The frontier keeps a
        reference and consults it for staleness; the engine keeps
        mutating it exactly as before.
    limit:
        Bounded work-set size (``None`` indexes every finite entry).
        With more than ``limit`` finite candidates, only the slots
        strictly below the ``(limit+1)``-th smallest time are indexed.
    cap:
        Heap length that triggers a compaction rebuild.  Defaults to
        twice the work-set bound (or twice the slot count, unbounded).
        The scalar engine passes ``slots * HEAP_SLACK`` to preserve its
        historical compaction cadence.
    alive:
        Optional boolean liveness mask sharing the array's indexing;
        entries of non-alive slots are stale and rebuilds skip them
        (the scalar engine's semantics).  Only supported unbounded.
    """

    __slots__ = (
        "_times",
        "_alive",
        "_limit",
        "_cap",
        "_heap",
        "_sentinel",
        "_degenerate",
        "builds",
        "refreshes",
        "compactions",
    )

    def __init__(
        self,
        times: np.ndarray,
        *,
        limit: Optional[int] = None,
        cap: Optional[int] = None,
        alive: Optional[np.ndarray] = None,
    ) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit!r}")
        if limit is not None and alive is not None:
            raise ValueError("an alive mask is only supported unbounded")
        self._times = times
        self._alive = alive
        self._limit = limit
        if cap is None:
            bound = limit if limit is not None else times.size
            cap = max(2 * bound, 16)
        self._cap = int(cap)
        self._heap: List[Tuple[float, int]] = []
        self._sentinel = math.inf
        self._degenerate = False
        self.builds = 0
        self.refreshes = 0
        self.compactions = 0
        self._build()
        self.builds += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def sentinel(self) -> float:
        """Smallest death time possibly *excluded* from the work set."""
        return self._sentinel

    @property
    def degenerate(self) -> bool:
        """True when the last rebuild could not isolate a work set."""
        return self._degenerate

    def __len__(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    # construction / rebuilds
    # ------------------------------------------------------------------

    def _build(self) -> bool:
        """Rebuild the heap from the authoritative array.

        Returns ``False`` (and flags :attr:`degenerate`) when more than
        ``limit`` candidates tie at the minimum, so no strict value
        partition can bound the work set.
        """
        times = self._times
        limit = self._limit
        self._degenerate = False
        if limit is not None and times.size > limit:
            # Value partition: the (limit+1)-th smallest time is the
            # sentinel; everything strictly below it is the work set.
            threshold = float(np.partition(times, limit)[limit])
            if math.isinf(threshold):
                # Fewer than limit+1 finite candidates: take them all.
                index = np.flatnonzero(np.isfinite(times))
                self._sentinel = math.inf
            else:
                index = np.flatnonzero(times < threshold)
                if index.size == 0:
                    # The whole minimum tie class exceeds the limit.
                    self._heap = []
                    self._degenerate = True
                    return False
                self._sentinel = threshold
        else:
            mask = np.isfinite(times)
            if self._alive is not None:
                mask &= self._alive
            index = np.flatnonzero(mask)
            self._sentinel = math.inf
        heap = list(zip(times[index].tolist(), index.tolist()))
        heapq.heapify(heap)
        self._heap = heap
        return True

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def push(self, slot: int, time: float) -> None:
        """Index ``slot``'s new death ``time`` (caller already stored it).

        Times at or above the sentinel are *not* indexed -- the refresh
        that drains the work set will pick them up from the array -- so
        replacement churn cannot bloat the bounded heap.
        """
        time = float(time)
        if not time < self._sentinel:
            return
        heapq.heappush(self._heap, (time, int(slot)))
        if len(self._heap) > self._cap:
            self._build()
            self.compactions += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _is_valid(self, entry: Tuple[float, int]) -> bool:
        time, slot = entry
        if self._times[slot] != time:
            return False
        alive = self._alive
        return alive is None or bool(alive[slot])

    def _pop_first(self) -> Optional[Tuple[float, int]]:
        """Pop the earliest valid entry, refreshing a drained work set.

        Returns ``None`` when no candidates remain anywhere; raises no
        signal for degenerate rebuilds -- callers check
        :attr:`degenerate` after a ``None``-ish result via
        :meth:`pop_epoch`.
        """
        heap = self._heap
        while True:
            while heap:
                entry = heapq.heappop(heap)
                if self._is_valid(entry):
                    return entry
            if self._sentinel < math.inf:
                if not self._build():
                    return None
                self.refreshes += 1
                heap = self._heap
                continue
            return None

    def pop(self) -> Optional[Tuple[float, int]]:
        """Pop the next ``(time, slot)`` death, or ``None`` when empty.

        The scalar-engine entry point: exact heap semantics, stale
        entries skipped, drained bounded work sets refreshed.
        """
        entry = self._pop_first()
        if entry is None and self._degenerate:
            raise RuntimeError(
                "degenerate work set: pop() requires an unbounded frontier"
            )
        return entry

    def pop_epoch(
        self,
        floor: Optional[float],
        w_max: float,
        cap: int,
        ceiling: float = math.inf,
    ) -> Optional[Tuple[List[int], List[float]]]:
        """Pop one chronologically safe epoch in ``(time, slot)`` order.

        Mirrors the batched kernel's selection exactly: the epoch is
        ``{time < first + floor / w_max}`` clamped to at least the first
        death (``floor is None`` delivers exactly one death).  Returns
        ``(slots, times)`` -- empty lists when no candidates remain --
        or ``None`` when equivalence cannot be proven, in which case all
        popped entries are restored and the caller must run the
        vectorized selection:

        * the epoch bound exceeds the sentinel (excluded slots could
          belong in the epoch) or the caller's ``ceiling`` (same, for an
          outer candidate prefilter);
        * the epoch would exceed ``cap`` deaths (the batch regrew; the
          cap must stay *below* ``BATCH_LIMIT``, where the vectorized
          tie-trim could reshape the epoch);
        * the work set degenerated (minimum tie class above the limit).
        """
        first = self._pop_first()
        if first is None:
            if self._degenerate:
                return None
            return ([], [])
        time0, slot0 = first
        if not time0 < ceiling:
            heapq.heappush(self._heap, first)
            return None
        if floor is None:
            return ([slot0], [time0])
        bound = time0 + floor / w_max
        if not (bound <= self._sentinel and bound <= ceiling):
            heapq.heappush(self._heap, first)
            return None
        slots = [slot0]
        times = [time0]
        heap = self._heap
        while True:
            while heap and not self._is_valid(heap[0]):
                heapq.heappop(heap)
            if not heap or not heap[0][0] < bound:
                # A drained bounded heap needs no refresh here: every
                # unindexed candidate is >= sentinel >= bound.
                return (slots, times)
            if len(slots) >= cap:
                for entry in zip(times, slots):
                    heapq.heappush(heap, entry)
                return None
            time, slot = heapq.heappop(heap)
            slots.append(slot)
            times.append(time)
