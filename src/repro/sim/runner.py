"""Parallel simulation runner: fan independent lifetime runs over cores.

Every evaluation surface in the repo -- the paper sweeps in
:mod:`repro.sim.experiments`, the declarative batch runner in
:mod:`repro.sim.batch`, and :func:`repro.sim.montecarlo.monte_carlo_lifetime`
-- reduces to a list of *independent* lifetime simulations.  This module
gives them one execution engine:

* :class:`SimTask` -- a pickle-safe declarative spec (device config +
  attack/sparing/wear-leveling names + parameters + seed) that fully
  determines one simulation, reusing the batch :class:`RunSpec`
  vocabulary.  Declarative tasks are content-addressable, so they compose
  with the :class:`~repro.sim.cache.ResultCache`.
* :class:`CallableTask` -- a factory-based spec for callers (Monte-Carlo
  studies, custom harnesses) whose components cannot be named; runs
  through the same scheduler but bypasses the cache.
* :class:`SimRunner` -- executes a task list: checkpoint and cache
  lookups first, then the misses either serially (``jobs=1`` or small
  batches) or over a :class:`concurrent.futures.ProcessPoolExecutor`,
  under a :class:`~repro.sim.resilience.ResiliencePolicy` supervisor.

Supervision (see :mod:`repro.sim.resilience`): every attempt runs under
an optional wall-clock timeout; failed attempts retry with exponential
backoff + deterministic jitter; a worker process dying (crash, OOM
kill) breaks only the tasks in flight -- the pool is respawned and the
run continues; tasks that exhaust their attempts surface as structured
:class:`~repro.sim.resilience.FailureRecord` entries in the stats
instead of killing the run.  With a
:class:`~repro.sim.resilience.Checkpoint` attached, completed results
stream to an append-only JSONL journal so an interrupted sweep resumes
without re-simulating finished work.

Determinism: a task carries every seed it needs, so parallel execution
is bit-identical to serial execution in any job count and any schedule
-- including schedules perturbed by retries, pool respawns, and
resumes; :func:`fork_task_seeds` derives per-task seeds the same way
the Monte-Carlo driver forks replica seeds.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import pickle
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.attacks.base import AttackModel
from repro.obs.metrics import MetricsRegistry, maybe_span
from repro.sim.executor import (
    CompletionCallback,
    ExecutionSummary,
    ExecutorBackend,
    SupervisedTask,
    handle_attempt_failure,
    mark_skipped,
)
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.suite import WORKLOAD_NAMES, workload
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.sim.cache import ResultCache, canonical_json, task_key
from repro.sim.config import ExperimentConfig
from repro.sim.faults import (
    InjectedCrash,
    TransientFault,
    active_injector,
    mark_worker_process,
    task_scope,
)
from repro.sim.lifetime import normalize_engine, simulate_lifetime
from repro.sim.resilience import (
    Checkpoint,
    FailureRecord,
    ResiliencePolicy,
    RunInterrupted,
    SimulationFailure,
    TaskTimeout,
    is_retryable,
    time_limit,
)
from repro.sim.result import SimulationResult
from repro.sparing.base import SpareScheme
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.util.events import EventLog, SimEvent
from repro.util.rng import fork_seeds
from repro.util.validation import require_fraction
from repro.verify import snapshot
from repro.verify.invariants import InvariantViolation, normalize_paranoia
from repro.wearlevel import make_scheme
from repro.wearlevel.base import WearLeveler

#: Attack names accepted by declarative tasks (plus any workload-suite name).
ATTACKS: Tuple[str, ...] = ("uaa", "bpa", "repeated")

#: Sparing-scheme names accepted by declarative tasks.
SPARINGS: Tuple[str, ...] = ("none", "pcd", "ps", "ps-worst", "max-we")

#: Wear-leveler names accepted by declarative tasks.
WEARLEVELERS: Tuple[str, ...] = (
    "none", "start-gap", "tlsr", "pcm-s", "bwl", "wawl", "toss-up"
)

#: Below this many uncached tasks a process pool costs more than it saves.
MIN_PARALLEL_TASKS: int = 2

#: Engine name that opts a task into trial-stacked chunk execution.
ENSEMBLE_ENGINE: str = "fluid-ensemble"

#: Auto-sized ensemble chunks never exceed this many trials.  Every
#: member's endurance map stays alive for the chunk's duration, so the
#: cap bounds peak memory -- and measured throughput at the benchmark
#: configuration (64k lines) degrades past ~32 trials per chunk as the
#: chunk's working set outgrows the cache hierarchy, so the cap is also
#: the empirical sweet spot.  An explicit ``trials_per_task`` overrides.
MAX_AUTO_CHUNK: int = 32


# ----------------------------------------------------------------------
# Component builders (the CLI/batch vocabulary, shared by every surface)
# ----------------------------------------------------------------------


def build_attack(name: str) -> AttackModel:
    """Instantiate an attack or workload model by spec name."""
    if name == "uaa":
        return UniformAddressAttack()
    if name == "bpa":
        return BirthdayParadoxAttack()
    if name == "repeated":
        return RepeatedAddressAttack()
    if name in WORKLOAD_NAMES:
        return workload(name)
    raise ValueError(
        f"unknown attack {name!r}; choose from {ATTACKS} "
        f"or the workload suite {WORKLOAD_NAMES}"
    )


def build_sparing(name: str, p: float, swr: float) -> SpareScheme:
    """Instantiate a sparing scheme by spec name."""
    if name == "none":
        return NoSparing()
    if name == "pcd":
        return PCD(p)
    if name == "ps":
        return PS.average_case(p)
    if name == "ps-worst":
        return PS.worst_case(p)
    if name == "max-we":
        return MaxWE(p, swr)
    raise ValueError(f"unknown sparing {name!r}; choose from {SPARINGS}")


def build_wearleveler(name: str) -> Optional[WearLeveler]:
    """Instantiate a wear-leveler by spec name (``None`` for ``"none"``)."""
    if name == "none":
        return None
    if name in WEARLEVELERS:
        return make_scheme(name, lines_per_region=1)
    raise ValueError(f"unknown wearlevel {name!r}; choose from {WEARLEVELERS}")


# ----------------------------------------------------------------------
# Task specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SimTask:
    """One declarative, pickle-safe, content-addressable simulation.

    Attributes
    ----------
    attack / sparing / wearlevel:
        Component names from the batch vocabulary (:data:`ATTACKS`,
        :data:`SPARINGS`, :data:`WEARLEVELERS` / workload suite).
    p / swr:
        Spare fraction and SWR share for the schemes that take them.
    config:
        Device configuration; its seed drives endurance-map placement.
    seed:
        Simulation master seed (sparing / wear-leveling streams).
        ``None`` defaults to ``config.seed``, matching the sweep drivers.
    emap_seed:
        Optional placement-seed override: the endurance map is rebuilt
        from ``config`` with this seed (Monte-Carlo placement variance).
    engine:
        Lifetime engine (see :data:`repro.sim.lifetime.ENGINES`);
        defaults to the vectorized ``"fluid-batched"`` kernel.
    record_timeline:
        Whether the simulation records per-death timeline events.  Off by
        default: batch/sweep surfaces aggregate scalar results, and the
        timeline is never cached anyway.
    paranoia / shadow_sample:
        State-integrity verification knobs, forwarded to
        :class:`~repro.sim.lifetime.LifetimeSimulator`.  Excluded from
        the cache key: checks never change results, so a verified run and
        an unverified run are the same entry (a cache hit skips
        verification -- use ``--no-cache`` to force a checked re-run).
    label:
        Cosmetic row label; excluded from the cache key so relabelled
        reruns still hit.
    """

    attack: str = "uaa"
    sparing: str = "max-we"
    wearlevel: str = "none"
    p: float = 0.1
    swr: float = 0.9
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    seed: Optional[int] = None
    emap_seed: Optional[int] = None
    engine: str = "fluid-batched"
    record_timeline: bool = False
    paranoia: str = "off"
    shadow_sample: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", normalize_engine(self.engine))
        normalize_paranoia(self.paranoia)
        require_fraction(self.shadow_sample, "shadow_sample")
        if self.attack not in ATTACKS and self.attack not in WORKLOAD_NAMES:
            raise ValueError(
                f"unknown attack {self.attack!r}; choose from {ATTACKS} "
                f"or the workload suite {WORKLOAD_NAMES}"
            )
        if self.sparing not in SPARINGS:
            raise ValueError(
                f"unknown sparing {self.sparing!r}; choose from {SPARINGS}"
            )
        if self.wearlevel not in WEARLEVELERS:
            raise ValueError(
                f"unknown wearlevel {self.wearlevel!r}; choose from {WEARLEVELERS}"
            )
        require_fraction(self.p, "p")
        require_fraction(self.swr, "swr")

    @property
    def effective_seed(self) -> int:
        """The simulation seed actually used (defaults to the config's)."""
        return self.config.seed if self.seed is None else self.seed

    def make_emap(self) -> EnduranceMap:
        """Materialize the task's endurance map (placement override aware)."""
        if self.emap_seed is not None:
            return self.config.with_(seed=self.emap_seed).make_emap()
        return self.config.make_emap()

    def cache_payload(self) -> Dict[str, object]:
        """Canonical mapping of everything that determines the result.

        Exactly the execution-relevant fields: the label and the config
        knobs the task overrides (``spare_fraction`` / ``swr_fraction``)
        are deliberately excluded so cosmetic changes still hit.
        """
        return {
            "attack": self.attack,
            "sparing": self.sparing,
            "wearlevel": self.wearlevel,
            "p": float(self.p),
            "swr": float(self.swr),
            "seed": int(self.effective_seed),
            "emap_seed": None if self.emap_seed is None else int(self.emap_seed),
            "engine": self.engine,
            "config": {
                "regions": self.config.regions,
                "lines_per_region": self.config.lines_per_region,
                "q": float(self.config.q),
                "endurance_model": self.config.endurance_model,
                "seed": self.config.seed,
            },
        }

    def execute(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> Tuple[SimulationResult, float]:
        """Run the simulation; returns ``(result, wall_seconds)``."""
        start = perf_counter()
        payload, options = _task_context_of(self)
        with snapshot.task_context(payload, options):
            with maybe_span(metrics, "sim/endurance"):
                emap = self.make_emap()
            with maybe_span(metrics, "sim/components"):
                attack = build_attack(self.attack)
                sparing = build_sparing(self.sparing, self.p, self.swr)
                wearleveler = build_wearleveler(self.wearlevel)
            result = simulate_lifetime(
                emap,
                attack,
                sparing,
                wearleveler=wearleveler,
                rng=self.effective_seed,
                engine=self.engine,
                record_timeline=self.record_timeline,
                metrics=metrics,
                paranoia=self.paranoia,
                shadow_sample=self.shadow_sample,
            )
        return result, perf_counter() - start


@dataclass(frozen=True)
class CallableTask:
    """A factory-based simulation for components that cannot be named.

    Used by the Monte-Carlo driver (and any custom harness) whose
    attack/sparing/wear-leveling components come as zero-argument
    factories.  Parallel execution requires the factories to be picklable
    (module-level callables / functools.partial); the runner falls back
    to serial execution otherwise.  Not content-addressable, so never
    cached -- but checkpointable under a best-effort identity derived
    from the factories' qualified names plus the seed (see
    :func:`task_identity`).
    """

    attack_factory: Callable[[], AttackModel]
    sparing_factory: Callable[[], SpareScheme]
    emap_factory: Callable[[int], EnduranceMap]
    seed: int
    wearleveler_factory: Optional[Callable[[], WearLeveler]] = None
    engine: str = "fluid-batched"
    record_timeline: bool = False
    paranoia: str = "off"
    shadow_sample: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", normalize_engine(self.engine))
        normalize_paranoia(self.paranoia)
        require_fraction(self.shadow_sample, "shadow_sample")

    def execute(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> Tuple[SimulationResult, float]:
        """Run the simulation; returns ``(result, wall_seconds)``.

        Factories are invoked in the same order as the historical serial
        Monte-Carlo loop (wear-leveler, emap, attack, sparing) so stateful
        factories observe an identical call sequence.
        """
        start = perf_counter()
        payload, options = _task_context_of(self)
        with snapshot.task_context(payload, options):
            with maybe_span(metrics, "sim/components"):
                wearleveler = (
                    self.wearleveler_factory() if self.wearleveler_factory else None
                )
            with maybe_span(metrics, "sim/endurance"):
                emap = self.emap_factory(self.seed)
            result = simulate_lifetime(
                emap,
                self.attack_factory(),
                self.sparing_factory(),
                wearleveler=wearleveler,
                rng=self.seed,
                engine=self.engine,
                record_timeline=self.record_timeline,
                metrics=metrics,
                paranoia=self.paranoia,
                shadow_sample=self.shadow_sample,
            )
        return result, perf_counter() - start


AnyTask = Union[SimTask, CallableTask]


@dataclass(frozen=True)
class _EnsembleChunk:
    """A group of same-option ensemble tasks advanced in one kernel pass.

    The runner forms chunks from consecutive pending tasks whose engine
    is ``"fluid-ensemble"`` and whose execution options agree, then
    supervises the chunk as one unit: one pool dispatch, one timeout
    budget, one retry counter.  Completion fans back out -- each member
    keeps its own results slot, cache entry, and checkpoint record, so
    everything downstream of the runner is oblivious to the grouping.

    Components are built in each task type's historical order (SimTask:
    emap, attack, sparing, wear-leveler; CallableTask: wear-leveler,
    emap, attack, sparing) so stateful factories observe the exact call
    sequence of per-task dispatch.
    """

    members: Tuple[AnyTask, ...]
    record_timeline: bool = False
    paranoia: str = "off"
    shadow_sample: float = 0.0
    label: str = ""

    def execute(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> Tuple[List[SimulationResult], float]:
        """Run every member through one ensemble; results in member order."""
        from repro.sim.ensemble import EnsembleMember, simulate_ensemble

        start = perf_counter()
        ensemble_members: List[EnsembleMember] = []
        for task in self.members:
            if isinstance(task, SimTask):
                with maybe_span(metrics, "sim/endurance"):
                    emap = task.make_emap()
                with maybe_span(metrics, "sim/components"):
                    attack = build_attack(task.attack)
                    sparing = build_sparing(task.sparing, task.p, task.swr)
                    wearleveler = build_wearleveler(task.wearlevel)
                rng: Union[int, None] = task.effective_seed
            else:
                with maybe_span(metrics, "sim/components"):
                    wearleveler = (
                        task.wearleveler_factory()
                        if task.wearleveler_factory
                        else None
                    )
                with maybe_span(metrics, "sim/endurance"):
                    emap = task.emap_factory(task.seed)
                attack = task.attack_factory()
                sparing = task.sparing_factory()
                rng = task.seed
            ensemble_members.append(
                EnsembleMember(
                    emap=emap,
                    attack=attack,
                    sparing=sparing,
                    wearleveler=wearleveler,
                    rng=rng,
                )
            )
        results = simulate_ensemble(
            ensemble_members,
            record_timeline=self.record_timeline,
            metrics=metrics,
            paranoia=self.paranoia,
            shadow_sample=self.shadow_sample,
        )
        return results, perf_counter() - start


def _task_context_of(task: AnyTask) -> Tuple[Optional[dict], dict]:
    """The ``(payload, options)`` a crash-dump bundle pins for a task.

    Declarative tasks pin their full cache payload, making their bundles
    replayable; callable tasks pin only the execution options (factories
    cannot be serialized declaratively).
    """
    payload = task.cache_payload() if isinstance(task, SimTask) else None
    options = {
        "paranoia": task.paranoia,
        "shadow_sample": float(task.shadow_sample),
        "record_timeline": task.record_timeline,
        "label": task.label,
    }
    return payload, options


def _describe_callable(obj: object) -> str:
    """Best-effort stable textual identity of a factory callable."""
    if obj is None:
        return "none"
    if isinstance(obj, functools.partial):
        keywords = sorted(obj.keywords.items()) if obj.keywords else []
        return (
            f"partial({_describe_callable(obj.func)}, args={obj.args!r}, "
            f"keywords={keywords!r})"
        )
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if module is not None and qualname is not None:
        return f"{module}.{qualname}"
    return repr(obj)


def task_identity(task: AnyTask) -> Tuple[str, str]:
    """Stable ``(key, label)`` of a task for checkpoints and reports.

    Declarative tasks reuse their cache content key.  Callable tasks get
    a best-effort identity from their factories' qualified names plus
    the seed/engine -- stable across runs of the same study, but two
    *different* inline lambdas can collide; callable-task checkpoints
    are therefore only sound within one study definition (the
    Monte-Carlo driver's usage).
    """
    if isinstance(task, SimTask):
        return task_key(task), task.label
    payload = {
        "attack_factory": _describe_callable(task.attack_factory),
        "sparing_factory": _describe_callable(task.sparing_factory),
        "emap_factory": _describe_callable(task.emap_factory),
        "wearleveler_factory": _describe_callable(task.wearleveler_factory),
        "seed": int(task.seed),
        "engine": task.engine,
        "record_timeline": task.record_timeline,
    }
    digest = hashlib.sha256(
        ("callable:" + canonical_json(payload)).encode()
    ).hexdigest()
    return digest, task.label


def fork_task_seeds(seed: Optional[int], count: int, label: str = "sim-runner") -> List[int]:
    """Derive ``count`` deterministic per-task seeds from a master seed."""
    return fork_seeds(seed, count, label)


def _execute_task(task: AnyTask) -> Tuple[SimulationResult, float]:
    """Module-level worker entry point (picklable for process pools)."""
    return task.execute()


@dataclass(frozen=True)
class _WorkerReport:
    """What one worker attempt ships back to the supervisor.

    ``started``/``ended`` are ``time.monotonic()`` stamps, comparable
    with the supervisor's own monotonic clock on the same host, so the
    supervisor can split an attempt's wall time into pool queue wait
    (``started - submitted``), worker run time (``elapsed``, measured
    around the simulation itself), and harvest latency (supervisor
    pickup minus ``ended``).  ``metrics`` is the worker registry's
    snapshot, merged into the supervisor's registry on harvest.
    """

    result: SimulationResult
    elapsed: float
    started: float
    ended: float
    metrics: Optional[dict] = None


def _execute_supervised(task: AnyTask, key: str, attempt: int) -> _WorkerReport:
    """Worker entry point with the fault-injection hook applied.

    ``attempt`` is 0-based; the injector's rolls are deterministic in
    ``(key, attempt)`` so retried attempts re-roll their faults
    identically on every run of the harness.
    """
    started = monotonic()
    injector = active_injector()
    if injector is not None:
        injector.before_execute(key, attempt)
    worker_metrics = MetricsRegistry()
    with task_scope(key):
        try:
            result, elapsed = task.execute(metrics=worker_metrics)
        except (InjectedCrash, TransientFault, InvariantViolation):
            # Injected faults are the supervisor's business; violations
            # already wrote their own bundle engine-side.
            raise
        except Exception as error:
            if (
                task.paranoia != "off"
                or os.environ.get(snapshot.DEBUG_DIR_ENV)
            ):
                payload, options = _task_context_of(task)
                with snapshot.task_context(payload, options):
                    snapshot.write_error_bundle(error, key=key)
            raise
    return _WorkerReport(
        result=result,
        elapsed=elapsed,
        started=started,
        ended=monotonic(),
        metrics=worker_metrics.snapshot(),
    )


def _fault_spec_text() -> str:
    """The active fault spec rendered for worker-process initializers."""
    injector = active_injector()
    return injector.spec.to_spec() if injector is not None else ""


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunnerStats:
    """Execution statistics of one :meth:`SimRunner.run_detailed` call.

    Attributes
    ----------
    tasks:
        Number of tasks submitted.
    simulated:
        Tasks dispatched to execution (everything not served by the
        checkpoint or the cache) -- including any that ultimately failed.
    cache_hits:
        Tasks served from the result cache without simulating.
    jobs:
        Worker-process count used for the simulated tasks (1 = serial).
    wall_seconds:
        End-to-end wall time of the call.
    task_seconds:
        Per-task simulation wall times, in submission order (0.0 for
        cache/checkpoint hits and failures).
    checkpoint_hits:
        Tasks served from the resume checkpoint without simulating.
    retries:
        Re-executions performed by the supervisor (attempts beyond each
        task's first).
    pool_respawns:
        Times the worker pool was torn down and rebuilt after a crash
        or a timed-out (hung) task.
    failures:
        One :class:`~repro.sim.resilience.FailureRecord` per task that
        did not produce a result; the matching ``results`` slots hold
        ``None``.
    interrupted:
        Whether the run was stopped by SIGINT/SIGTERM before finishing.
    events:
        The supervisor's event log (retries, timeouts, crashes,
        respawns) for forensics.
    queue_seconds:
        Total time completed tasks spent queued in the pool before a
        worker picked them up (supervisor overhead, not task runtime).
    harvest_seconds:
        Total latency between workers finishing and the supervisor
        collecting the result (bounded by the wait-loop granularity).
    requeue_wait_seconds:
        Total time tasks sat in pools that broke or hung before being
        requeued -- previously dropped silently by pool recovery.
    metrics:
        Snapshot of the run's :class:`~repro.obs.metrics.MetricsRegistry`
        (counters, per-phase timings, merged worker metrics).
    backend:
        Spec name of the execution backend used (``"pool"`` /
        ``"fabric"``).
    degraded:
        The run completed but on fewer resources than requested (fabric
        workers died and were not replaced; survivors -- or the
        coordinator itself -- absorbed the remaining work).
    """

    tasks: int
    simulated: int
    cache_hits: int
    jobs: int
    wall_seconds: float
    task_seconds: Tuple[float, ...] = ()
    checkpoint_hits: int = 0
    retries: int = 0
    pool_respawns: int = 0
    failures: Tuple[FailureRecord, ...] = ()
    interrupted: bool = False
    events: Tuple[SimEvent, ...] = ()
    queue_seconds: float = 0.0
    harvest_seconds: float = 0.0
    requeue_wait_seconds: float = 0.0
    metrics: Optional[dict] = None
    backend: str = "pool"
    degraded: bool = False

    @property
    def completed(self) -> int:
        """Tasks that produced a result (hits + successful simulations)."""
        return self.tasks - len(self.failures)

    @property
    def sims_per_second(self) -> float:
        """Simulated-task throughput over the call's wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.simulated / self.wall_seconds

    def __str__(self) -> str:
        text = (
            f"{self.tasks} tasks ({self.cache_hits} cached, "
            f"{self.simulated} simulated) in {self.wall_seconds:.2f}s "
            f"with {self.jobs} job(s) -- {self.sims_per_second:.1f} sims/s"
        )
        if self.checkpoint_hits:
            text += f"; {self.checkpoint_hits} resumed from checkpoint"
        if self.retries:
            text += f"; {self.retries} retries"
        if self.failures:
            text += f"; {len(self.failures)} FAILED"
        if self.degraded:
            text += "; DEGRADED"
        if self.interrupted:
            text += "; INTERRUPTED"
        return text


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def _picklable(tasks: Sequence[AnyTask]) -> bool:
    try:
        pickle.dumps(tuple(tasks))
        return True
    except Exception:
        return False


# Historical names, kept for callers/tests written against PR 3-7: the
# supervision state and summary now live in :mod:`repro.sim.executor` so
# backends outside this module can share them.
_Supervised = SupervisedTask
_ExecutionSummary = ExecutionSummary


def _terminate_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Shut a pool down without leaving dangling worker processes.

    ``shutdown(wait=True)`` would block forever on a hung worker, so the
    workers are terminated explicitly (then killed if termination does
    not take) before the executor is abandoned.
    """
    if pool is None:
        return
    processes = list(getattr(pool, "_processes", {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)


class ProcessPoolBackend(ExecutorBackend):
    """The local backend: in-process serial or ``ProcessPoolExecutor``.

    Holds the PR-3 supervisor semantics verbatim: per-attempt deadlines,
    exponential-backoff retries, crash isolation with pool respawn, and
    innocent-requeue (in-flight tasks pulled unrun out of a torn-down
    pool get their attempt refunded).  Small or unpicklable batches fall
    back to the serial path automatically; ``summary.jobs_used`` reports
    which way it went.
    """

    name = "pool"

    def execute(
        self,
        pending: Sequence[SupervisedTask],
        *,
        jobs: int,
        policy: ResiliencePolicy,
        events: EventLog,
        on_complete: CompletionCallback,
        metrics: MetricsRegistry,
        checkpoint: "Optional[Checkpoint]" = None,
    ) -> ExecutionSummary:
        jobs_used = min(jobs, len(pending)) if pending else 1
        if (
            jobs_used >= MIN_PARALLEL_TASKS
            and len(pending) >= MIN_PARALLEL_TASKS
            and _picklable([state.task for state in pending])
        ):
            summary = self.run_parallel(
                pending, jobs_used, policy, events, on_complete, metrics
            )
        else:
            jobs_used = 1
            summary = self.run_serial(
                pending, policy, events, on_complete, metrics
            )
        summary.jobs_used = jobs_used
        return summary

    def run_serial(
        self,
        pending: Sequence[SupervisedTask],
        policy: ResiliencePolicy,
        events: EventLog,
        on_complete: CompletionCallback,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ExecutionSummary:
        """In-process supervised execution (jobs=1 / unpicklable tasks).

        Timeouts use the SIGALRM guard where available; injected or real
        crashes surface as exceptions (an in-process ``os._exit`` would
        take the caller down, so serial fault injection raises instead).
        """
        if metrics is None:
            metrics = MetricsRegistry()
        summary = ExecutionSummary()
        queue: deque[SupervisedTask] = deque(pending)
        try:
            while queue:
                state = queue[0]
                delay = state.not_before - monotonic()
                if delay > 0:
                    time.sleep(delay)
                started = perf_counter()
                state.attempts += 1
                try:
                    with time_limit(policy.timeout):
                        report = _execute_supervised(
                            state.task, state.key, state.attempts - 1
                        )
                except KeyboardInterrupt:
                    raise
                except TaskTimeout as error:
                    state.elapsed += perf_counter() - started
                    queue.popleft()
                    handle_attempt_failure(
                        policy, state, error, "timeout", queue, summary, events
                    )
                except Exception as error:
                    state.elapsed += perf_counter() - started
                    queue.popleft()
                    handle_attempt_failure(
                        policy, state, error, "exception", queue, summary, events
                    )
                else:
                    state.elapsed += report.elapsed
                    metrics.observe_seconds("runner/worker_run", report.elapsed)
                    if report.metrics is not None:
                        metrics.merge_snapshot(report.metrics)
                    queue.popleft()
                    on_complete(state, report.result, report.elapsed)
                if policy.fail_fast and summary.failures:
                    mark_skipped(queue, summary)
                    break
        except KeyboardInterrupt:
            summary.interrupted = True
            mark_skipped(queue, summary, kind="interrupted")
        return summary

    def run_parallel(
        self,
        pending: Sequence[SupervisedTask],
        jobs: int,
        policy: ResiliencePolicy,
        events: EventLog,
        on_complete: CompletionCallback,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ExecutionSummary:
        """Process-pool supervised execution with crash isolation.

        The supervisor dispatches at most ``jobs`` tasks at a time and
        watches their deadlines.  A worker death breaks only the futures
        in flight (each charged one attempt); the pool is rebuilt and the
        run continues.  A deadline overrun cannot cancel the running
        future -- ``ProcessPoolExecutor`` has no per-task kill -- so the
        pool is torn down (terminating the hung worker) and the
        *innocent* in-flight tasks are requeued without losing an
        attempt.

        Timing: ``submitted`` stamps are ``time.monotonic()``, the same
        clock the worker stamps its report with, so each attempt's wall
        time splits into pool queue wait (worker start - submit), worker
        run time (the worker's own measurement), and harvest latency
        (supervisor pickup - worker end, bounded by the wait-loop poll
        granularity).  Only worker run time is charged to the task;
        queue/harvest/requeue time is recorded as supervisor overhead.
        """
        if metrics is None:
            metrics = MetricsRegistry()
        summary = ExecutionSummary()
        ready: deque[SupervisedTask] = deque(pending)
        inflight: Dict[object, Tuple[SupervisedTask, Optional[float], float]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        timeout = policy.timeout

        def respawn_pool() -> ProcessPoolExecutor:
            nonlocal pool
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=jobs,
                    initializer=mark_worker_process,
                    initargs=(_fault_spec_text(),),
                )
            return pool

        def recover_broken_pool() -> None:
            """Tear down a broken/hung pool and requeue in-flight work.

            Futures that already resolved are harvested (a crash verdict
            charges the attempt); futures that never got a verdict are
            requeued without charging the attempt consumed by the doomed
            submission.  The time those innocents sat in the doomed pool
            is recorded as ``runner/requeue_wait`` -- it was previously
            dropped, under-reporting wall time on fault-heavy runs.
            """
            nonlocal pool
            for future, (state, _, submitted) in list(inflight.items()):
                if future.done():
                    harvest(future, state, submitted)
                else:
                    waited = max(monotonic() - submitted, 0.0)
                    state.requeue_seconds += waited
                    metrics.observe_seconds("runner/requeue_wait", waited)
                    events.record(
                        "task-requeued", state.index, key=state.key[:12]
                    )
                    state.attempts -= 1
                    ready.append(state)
            inflight.clear()
            _terminate_pool(pool)
            pool = None
            summary.pool_respawns += 1
            events.record("pool-respawn", -1, jobs=jobs)

        def harvest(future, state: SupervisedTask, submitted: float) -> bool:
            """Collect one finished future; returns True if the pool broke.

            On success only the worker's own run time is charged to the
            task; the queue wait before the worker picked it up and the
            latency until the supervisor collected it are accounted
            separately.  A failed attempt has no worker report, so the
            whole supervisor-observed attempt wall is charged.
            """
            try:
                report = future.result()
            except KeyboardInterrupt:
                raise
            except BrokenProcessPool as error:
                state.elapsed += max(monotonic() - submitted, 0.0)
                handle_attempt_failure(
                    policy, state, error, "crash", ready, summary, events
                )
                return True
            except Exception as error:
                state.elapsed += max(monotonic() - submitted, 0.0)
                handle_attempt_failure(
                    policy, state, error, "exception", ready, summary, events
                )
                return False
            else:
                queue_wait = max(report.started - submitted, 0.0)
                harvest_latency = max(monotonic() - report.ended, 0.0)
                state.elapsed += report.elapsed
                state.queue_seconds += queue_wait
                state.harvest_seconds += harvest_latency
                metrics.observe_seconds("runner/queue_wait", queue_wait)
                metrics.observe_seconds("runner/worker_run", report.elapsed)
                metrics.observe_seconds("runner/harvest_latency", harvest_latency)
                if report.metrics is not None:
                    metrics.merge_snapshot(report.metrics)
                on_complete(state, report.result, report.elapsed)
                return False

        try:
            while ready or inflight:
                now = monotonic()
                # Dispatch every ready state whose backoff has elapsed.
                for _ in range(len(ready)):
                    if len(inflight) >= jobs:
                        break
                    state = ready.popleft()
                    if state.not_before > now:
                        ready.append(state)  # rotate; try again next round
                        continue
                    try:
                        future = respawn_pool().submit(
                            _execute_supervised,
                            state.task,
                            state.key,
                            state.attempts,
                        )
                    except BrokenProcessPool:
                        # A crashing worker can break the pool between the
                        # last harvest and this submit, in which case the
                        # error surfaces here in the supervisor rather than
                        # through a future.  This task never ran: requeue
                        # it un-charged, recycle the pool, and go around.
                        ready.appendleft(state)
                        recover_broken_pool()
                        break
                    state.attempts += 1
                    deadline = None if timeout is None else monotonic() + timeout
                    inflight[future] = (state, deadline, monotonic())

                if not inflight:
                    # Everything is backing off; sleep to the earliest retry.
                    if ready:
                        next_ready = min(state.not_before for state in ready)
                        time.sleep(max(next_ready - monotonic(), 0.0) + 0.001)
                        continue
                    break

                wait_budgets = [
                    deadline - now
                    for _, deadline, _ in inflight.values()
                    if deadline is not None
                ]
                if ready:
                    wait_budgets.append(
                        max(min(s.not_before for s in ready) - now, 0.0) + 0.001
                    )
                wait_for = max(min(wait_budgets), 0.01) if wait_budgets else None
                done, _ = wait(
                    list(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
                )

                pool_broken = False
                for future in done:
                    state, _, submitted = inflight.pop(future)
                    pool_broken |= harvest(future, state, submitted)

                now = monotonic()
                overdue = [
                    future
                    for future, (_, deadline, _) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                for future in overdue:
                    state, deadline, submitted = inflight.pop(future)
                    if future.done():
                        pool_broken |= harvest(future, state, submitted)
                        continue
                    state.elapsed += max(monotonic() - submitted, 0.0)
                    handle_attempt_failure(
                        policy,
                        state,
                        TaskTimeout(
                            f"task exceeded its {timeout:g}s wall-clock budget"
                        ),
                        "timeout",
                        ready,
                        summary,
                        events,
                    )
                    # The hung worker can only be removed by killing the
                    # pool; innocents in flight are requeued below.
                    pool_broken = True

                if pool_broken:
                    recover_broken_pool()

                if policy.fail_fast and summary.failures:
                    mark_skipped(ready, summary)
                    if not inflight:
                        break
        except KeyboardInterrupt:
            summary.interrupted = True
            for state, _, _ in inflight.values():
                summary.failures[state.index] = FailureRecord(
                    index=state.index,
                    key=state.key,
                    label=state.label,
                    kind="interrupted",
                    attempts=state.attempts,
                )
            inflight.clear()
            mark_skipped(ready, summary, kind="interrupted")
        finally:
            if pool is not None:
                if summary.interrupted:
                    # Workers may be mid-task; don't wait on them.
                    _terminate_pool(pool)
                else:
                    # Clean exit: workers are idle, a graceful shutdown
                    # reaps them without signals.
                    try:
                        pool.shutdown(wait=True, cancel_futures=True)
                    except Exception:
                        _terminate_pool(pool)
        return summary


def resolve_backend(
    backend: "str | ExecutorBackend | None",
    *,
    workers: Optional[int] = None,
    lease_ttl: Optional[float] = None,
) -> ExecutorBackend:
    """Resolve a backend spec (name, instance, or ``None``) to a backend.

    ``None`` and ``"pool"`` give the local process pool; ``"fabric"``
    lazily imports :class:`repro.fabric.backend.FabricBackend` (socket
    coordinator + worker-loop processes) with ``workers`` / ``lease_ttl``
    forwarded.  An :class:`ExecutorBackend` instance passes through
    (``workers``/``lease_ttl`` must then be unset -- the instance already
    made those choices).
    """
    if isinstance(backend, ExecutorBackend):
        if workers is not None or lease_ttl is not None:
            raise ValueError(
                "workers/lease_ttl only apply when the backend is named by "
                "spec; configure the backend instance directly instead"
            )
        return backend
    if backend is None or backend == "pool":
        return ProcessPoolBackend()
    if backend == "fabric":
        from repro.fabric.backend import FabricBackend

        kwargs = {}
        if workers is not None:
            kwargs["workers"] = workers
        if lease_ttl is not None:
            kwargs["lease_ttl"] = lease_ttl
        return FabricBackend(**kwargs)
    raise ValueError(
        f"unknown backend {backend!r}; choose from ('pool', 'fabric') "
        "or pass an ExecutorBackend instance"
    )


class SimRunner:
    """Execute independent simulation tasks, supervised and in parallel.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs serially in-process, 0 or
        ``None`` uses every CPU.
    cache:
        Optional :class:`ResultCache`; declarative :class:`SimTask`\\ s
        are looked up before simulating and stored after.
        :class:`CallableTask`\\ s always simulate.
    policy:
        The :class:`~repro.sim.resilience.ResiliencePolicy` governing
        timeouts, retries, backoff, and fail-fast; defaults to bounded
        retries with no timeout.
    checkpoint:
        Optional :class:`~repro.sim.resilience.Checkpoint` (or a path,
        opened in resume mode): completed results stream to the journal
        and previously journaled tasks are served without re-simulating.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to record
        into (so one registry can span several runner calls plus CLI
        overhead).  When omitted the runner uses a private registry;
        either way the final snapshot lands in ``stats.metrics``.
    trials_per_task:
        Ensemble chunk size: consecutive tasks with the
        ``"fluid-ensemble"`` engine and matching options are advanced
        ``trials_per_task`` at a time by one stacked kernel pass (see
        :mod:`repro.sim.ensemble`).  ``None`` (default) auto-sizes the
        chunks to ``ceil(run / jobs)`` so pool parallelism and trial
        stacking compose.  Irrelevant to other engines.
    backend:
        Execution backend: ``"pool"`` (default; local process pool),
        ``"fabric"`` (socket-served multi-host coordinator, see
        :mod:`repro.fabric`), or an :class:`ExecutorBackend` instance.
        Determinism holds across backends: the same task list yields
        bit-identical results on either.
    on_result:
        Optional ``(index, result, elapsed)`` observer invoked once per
        task as its result lands -- whether simulated, cache-served, or
        checkpoint-served (the latter two with ``elapsed=0.0``).  Runs
        on the supervisor thread in completion order (not submission
        order) and must not raise; the service layer uses it to stream
        partial results while a batch is still running.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        policy: Optional[ResiliencePolicy] = None,
        checkpoint: "Checkpoint | str | os.PathLike | None" = None,
        metrics: Optional[MetricsRegistry] = None,
        trials_per_task: Optional[int] = None,
        backend: "str | ExecutorBackend | None" = None,
        on_result: Optional[Callable[[int, SimulationResult, float], None]] = None,
    ) -> None:
        self._jobs = resolve_jobs(jobs)
        self._cache = cache
        self._policy = policy if policy is not None else ResiliencePolicy()
        if checkpoint is not None and not isinstance(checkpoint, Checkpoint):
            checkpoint = Checkpoint(checkpoint, resume=True)
        self._checkpoint = checkpoint
        self._metrics = metrics
        if trials_per_task is not None and trials_per_task < 1:
            raise ValueError(
                f"trials_per_task must be >= 1, got {trials_per_task}"
            )
        self._trials_per_task = trials_per_task
        self._backend = resolve_backend(backend)
        self._on_result = on_result

    @property
    def jobs(self) -> int:
        """Resolved worker count."""
        return self._jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        """The attached result cache, if any."""
        return self._cache

    @property
    def policy(self) -> ResiliencePolicy:
        """The supervision policy in force."""
        return self._policy

    @property
    def checkpoint(self) -> Optional[Checkpoint]:
        """The attached resume checkpoint, if any."""
        return self._checkpoint

    @property
    def trials_per_task(self) -> Optional[int]:
        """Configured ensemble chunk size (``None`` = auto-sized)."""
        return self._trials_per_task

    @property
    def backend(self) -> ExecutorBackend:
        """The resolved execution backend."""
        return self._backend

    # ------------------------------------------------------------------
    # Ensemble chunking
    # ------------------------------------------------------------------

    @staticmethod
    def _ensemble_group_of(task: AnyTask) -> Optional[Tuple[object, ...]]:
        """Grouping key of an ensemble-eligible task (``None`` if not).

        Only tasks with identical execution options may share a chunk
        (``simulate_ensemble`` applies one option set to every member),
        and task types are never mixed so each chunk preserves its
        type's historical component-construction order.
        """
        if getattr(task, "engine", None) != ENSEMBLE_ENGINE:
            return None
        return (
            type(task).__name__,
            task.record_timeline,
            task.paranoia,
            float(task.shadow_sample),
        )

    def _chunk_ensembles(self, pending: List[_Supervised]) -> List[_Supervised]:
        """Fold consecutive ensemble-engine tasks into chunk states.

        Chunks hold ``trials_per_task`` members each; with the knob unset
        the size is ``ceil(run / jobs)`` (capped at
        :data:`MAX_AUTO_CHUNK`) so one pass over the task list saturates
        the process pool while still amortizing per-trial dispatch.
        Checkpoint- and cache-served members never reach this point, so a
        resumed run re-chunks only the remaining members.
        """
        chunked: List[_Supervised] = []
        run: List[_Supervised] = []
        run_group: Optional[Tuple[object, ...]] = None

        def flush() -> None:
            nonlocal run, run_group
            if not run:
                return
            size = self._trials_per_task
            if size is None:
                size = min(-(-len(run) // self._jobs), MAX_AUTO_CHUNK)
            for start in range(0, len(run), size):
                group = run[start : start + size]
                if len(group) == 1:
                    # A lone member runs as itself: the one-trial
                    # ensemble path in the engine gives the same result
                    # without the chunk indirection.
                    chunked.append(group[0])
                    continue
                first = group[0].task
                label = f"ensemble[{len(group)}] {group[0].label}".strip()
                chunk = _EnsembleChunk(
                    members=tuple(state.task for state in group),
                    record_timeline=first.record_timeline,
                    paranoia=first.paranoia,
                    shadow_sample=first.shadow_sample,
                    label=label,
                )
                digest = hashlib.sha256(
                    ("ensemble:" + "\n".join(state.key for state in group)).encode()
                ).hexdigest()
                chunked.append(
                    _Supervised(
                        index=group[0].index,
                        task=chunk,
                        key=digest,
                        label=label,
                        members=list(group),
                    )
                )
            run = []
            run_group = None

        for state in pending:
            group_key = self._ensemble_group_of(state.task)
            if group_key is None:
                flush()
                chunked.append(state)
                continue
            if run and group_key != run_group:
                flush()
            run.append(state)
            run_group = group_key
        flush()
        return chunked

    def run(self, tasks: Sequence[AnyTask]) -> List[SimulationResult]:
        """Execute ``tasks``; results in submission order.

        Raises :class:`~repro.sim.resilience.SimulationFailure` if any
        task exhausted its attempts; use :meth:`run_detailed` for the
        keep-going partial-results surface.
        """
        results, stats = self.run_detailed(tasks)
        if stats.failures:
            raise SimulationFailure(stats.failures)
        return results

    def run_detailed(
        self, tasks: Sequence[AnyTask]
    ) -> Tuple[List[Optional[SimulationResult]], RunnerStats]:
        """Execute ``tasks``; returns ordered results plus statistics.

        Graceful degradation: a task that exhausts its attempts leaves
        ``None`` in its results slot and a
        :class:`~repro.sim.resilience.FailureRecord` in
        ``stats.failures`` -- the other tasks' results are returned
        normally.  SIGINT/SIGTERM raise
        :class:`~repro.sim.resilience.RunInterrupted` (carrying the
        partial results and stats) after the pool is shut down cleanly
        and completed work is checkpointed.
        """
        tasks = list(tasks)
        started = perf_counter()
        metrics = self._metrics if self._metrics is not None else MetricsRegistry()
        total_span = metrics.span("runner/total")
        total_span.__enter__()
        if self._cache is not None:
            self._cache.attach_metrics(metrics)
        if self._checkpoint is not None:
            self._checkpoint.attach_metrics(metrics)
            # Absorb shard ledgers left by earlier distributed runs (or a
            # crashed coordinator) so their results resume like any other
            # journaled work.
            self._checkpoint.merge_shards()
        events = EventLog()
        results: List[Optional[SimulationResult]] = [None] * len(tasks)
        seconds = [0.0] * len(tasks)
        cache_hits = 0
        checkpoint_hits = 0

        pending: List[_Supervised] = []
        with metrics.span("runner/scan"):
            for index, task in enumerate(tasks):
                key, label = task_identity(task)
                if self._checkpoint is not None:
                    resumed = self._checkpoint.get(key)
                    if resumed is not None:
                        results[index] = resumed
                        checkpoint_hits += 1
                        # Heal the cache from the journal if the entry is gone.
                        if self._cache is not None and isinstance(task, SimTask):
                            self._cache.put(task, resumed)
                        if self._on_result is not None:
                            self._on_result(index, resumed, 0.0)
                        continue
                cached = (
                    self._cache.get(task)
                    if self._cache is not None and isinstance(task, SimTask)
                    else None
                )
                if cached is not None:
                    results[index] = cached
                    cache_hits += 1
                    if self._checkpoint is not None:
                        self._checkpoint.append(key, cached, 0.0, label)
                    if self._on_result is not None:
                        self._on_result(index, cached, 0.0)
                    continue
                pending.append(
                    _Supervised(index=index, task=task, key=key, label=label)
                )
            pending = self._chunk_ensembles(pending)
        simulated = sum(
            len(state.members) if state.members is not None else 1
            for state in pending
        )

        def complete_one(state: _Supervised, result: SimulationResult, elapsed: float) -> None:
            results[state.index] = result
            seconds[state.index] = elapsed
            task = tasks[state.index]
            if self._cache is not None and isinstance(task, SimTask):
                self._cache.put(task, result, elapsed)
            if self._checkpoint is not None:
                self._checkpoint.append(state.key, result, elapsed, state.label)
            if self._on_result is not None:
                self._on_result(state.index, result, elapsed)

        def on_complete(state: _Supervised, result, elapsed: float) -> None:
            if state.members is None:
                complete_one(state, result, elapsed)
                return
            # Ensemble chunk: one worker report carries every member's
            # result; fan back out so cache entries, checkpoint records,
            # and per-task seconds are indistinguishable from per-task
            # dispatch (the shared wall time is split evenly).
            share = elapsed / len(state.members)
            for member_state, member_result in zip(state.members, result):
                complete_one(member_state, member_result, share)

        summary = _ExecutionSummary()
        jobs_used = 1
        previous_sigterm = self._install_sigterm_handler()
        try:
            with metrics.span("runner/execute"):
                if pending:
                    summary = self._backend.execute(
                        pending,
                        jobs=self._jobs,
                        policy=self._policy,
                        events=events,
                        on_complete=on_complete,
                        metrics=metrics,
                        checkpoint=self._checkpoint,
                    )
                    jobs_used = summary.jobs_used
        finally:
            self._restore_sigterm_handler(previous_sigterm)
            if self._checkpoint is not None:
                # Harvest shard ledgers written during this run (fabric
                # workers journal locally before committing over the
                # wire); idempotent per key, so results that also landed
                # in the primary journal merge to nothing.
                self._checkpoint.merge_shards()

        with metrics.span("runner/finalize"):
            metrics.inc("runner.tasks", len(tasks))
            metrics.inc("runner.cache_hits", cache_hits)
            metrics.inc("runner.checkpoint_hits", checkpoint_hits)
            metrics.inc("runner.simulated", simulated)
            metrics.inc("runner.retries", summary.retries)
            metrics.inc("runner.pool_respawns", summary.pool_respawns)
            metrics.inc("runner.failures", len(summary.failures))
            metrics.gauge("runner.jobs", jobs_used)
            metrics.gauge("runner.degraded", 1.0 if summary.degraded else 0.0)
        total_span.__exit__(None, None, None)

        # A failed chunk surfaces one FailureRecord per member, each under
        # the member's own key/label, so downstream failure handling never
        # sees the chunk as a unit.
        chunk_by_index = {
            state.index: state for state in pending if state.members is not None
        }
        failures: Dict[int, FailureRecord] = {}
        for index, record in summary.failures.items():
            chunk = chunk_by_index.get(index)
            if chunk is None:
                failures[index] = record
                continue
            for member_state in chunk.members:
                failures[member_state.index] = dataclasses.replace(
                    record,
                    index=member_state.index,
                    key=member_state.key,
                    label=member_state.label,
                )

        stats = RunnerStats(
            tasks=len(tasks),
            simulated=simulated,
            cache_hits=cache_hits,
            jobs=jobs_used,
            wall_seconds=perf_counter() - started,
            task_seconds=tuple(seconds),
            checkpoint_hits=checkpoint_hits,
            retries=summary.retries,
            pool_respawns=summary.pool_respawns,
            failures=tuple(failures[index] for index in sorted(failures)),
            interrupted=summary.interrupted,
            events=tuple(events),
            queue_seconds=sum(state.queue_seconds for state in pending),
            harvest_seconds=sum(state.harvest_seconds for state in pending),
            requeue_wait_seconds=sum(state.requeue_seconds for state in pending),
            metrics=metrics.snapshot(),
            backend=self._backend.name,
            degraded=summary.degraded,
        )
        if summary.interrupted:
            raise RunInterrupted(results, stats)
        return results, stats

    # ------------------------------------------------------------------
    # Signal plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _install_sigterm_handler():
        """Convert SIGTERM into KeyboardInterrupt for the run's duration.

        Makes ``kill <pid>`` leave the same clean, resumable state as
        Ctrl-C.  Only possible on the main thread; elsewhere SIGTERM
        keeps its default (process-fatal) behaviour.
        """
        if threading.current_thread() is not threading.main_thread():
            return None
        if not hasattr(signal, "SIGTERM"):
            return None
        supervisor_pid = os.getpid()

        def _on_sigterm(signum, frame):
            if os.getpid() != supervisor_pid:
                # Inherited across fork: a pool worker terminated before
                # its initializer reset the handler.  Die quietly instead
                # of raising into the child's bootstrap code.
                os._exit(128 + signum)
            raise KeyboardInterrupt("SIGTERM")

        try:
            return signal.signal(signal.SIGTERM, _on_sigterm)
        except (ValueError, OSError):
            return None

    @staticmethod
    def _restore_sigterm_handler(previous) -> None:
        if previous is None:
            return
        try:
            signal.signal(signal.SIGTERM, previous)
        except (ValueError, OSError):
            pass

    # ------------------------------------------------------------------
    # Supervised execution
    # ------------------------------------------------------------------

    def _handle_attempt_failure(
        self,
        state: _Supervised,
        error: BaseException,
        kind: str,
        ready: "deque[_Supervised]",
        summary: _ExecutionSummary,
        events: EventLog,
    ) -> None:
        """Delegates to the shared :func:`handle_attempt_failure` arbiter."""
        handle_attempt_failure(
            self._policy, state, error, kind, ready, summary, events
        )

    def _mark_skipped(
        self,
        ready: "deque[_Supervised]",
        summary: _ExecutionSummary,
        kind: str = "skipped",
    ) -> None:
        mark_skipped(ready, summary, kind)

    def _run_supervised_serial(
        self,
        pending: Sequence[_Supervised],
        events: EventLog,
        on_complete: Callable[[_Supervised, SimulationResult, float], None],
        metrics: Optional[MetricsRegistry] = None,
    ) -> _ExecutionSummary:
        """Historical entry point; see :meth:`ProcessPoolBackend.run_serial`."""
        return ProcessPoolBackend().run_serial(
            pending, self._policy, events, on_complete, metrics
        )

    def _run_supervised_parallel(
        self,
        pending: Sequence[_Supervised],
        jobs: int,
        events: EventLog,
        on_complete: Callable[[_Supervised, SimulationResult, float], None],
        metrics: Optional[MetricsRegistry] = None,
    ) -> _ExecutionSummary:
        """Historical entry point; see :meth:`ProcessPoolBackend.run_parallel`."""
        return ProcessPoolBackend().run_parallel(
            pending, jobs, self._policy, events, on_complete, metrics
        )

    # Backwards-compatible alias used by older callers/tests: the plain
    # unsupervised fan-out is simply the supervised one with the default
    # policy, so route through it.
    def _run_parallel(
        self, tasks: Sequence[AnyTask], jobs: int
    ) -> List[Tuple[SimulationResult, float]]:
        outcomes: Dict[int, Tuple[SimulationResult, float]] = {}
        states = [
            _Supervised(index=index, task=task, key=task_identity(task)[0],
                        label=getattr(task, "label", ""))
            for index, task in enumerate(tasks)
        ]

        def collect(state: _Supervised, result: SimulationResult, elapsed: float) -> None:
            outcomes[state.index] = (result, elapsed)

        summary = self._run_supervised_parallel(states, jobs, EventLog(), collect)
        if summary.interrupted:
            raise KeyboardInterrupt("simulation run interrupted")
        if summary.failures:
            raise SimulationFailure(
                tuple(summary.failures[index] for index in sorted(summary.failures))
            )
        return [outcomes[index] for index in range(len(states))]
