"""Parallel simulation runner: fan independent lifetime runs over cores.

Every evaluation surface in the repo -- the paper sweeps in
:mod:`repro.sim.experiments`, the declarative batch runner in
:mod:`repro.sim.batch`, and :func:`repro.sim.montecarlo.monte_carlo_lifetime`
-- reduces to a list of *independent* lifetime simulations.  This module
gives them one execution engine:

* :class:`SimTask` -- a pickle-safe declarative spec (device config +
  attack/sparing/wear-leveling names + parameters + seed) that fully
  determines one simulation, reusing the batch :class:`RunSpec`
  vocabulary.  Declarative tasks are content-addressable, so they compose
  with the :class:`~repro.sim.cache.ResultCache`.
* :class:`CallableTask` -- a factory-based spec for callers (Monte-Carlo
  studies, custom harnesses) whose components cannot be named; runs
  through the same scheduler but bypasses the cache.
* :class:`SimRunner` -- executes a task list: cache lookups first, then
  the misses either serially (``jobs=1`` or small batches) or over a
  :class:`concurrent.futures.ProcessPoolExecutor`, with ordered result
  collection and per-task wall-time / sims-per-second statistics.

Determinism: a task carries every seed it needs, so parallel execution
is bit-identical to serial execution in any job count and any schedule;
:func:`fork_task_seeds` derives per-task seeds the same way the
Monte-Carlo driver forks replica seeds.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.attacks.base import AttackModel
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.suite import WORKLOAD_NAMES, workload
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.sim.cache import ResultCache
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import normalize_engine, simulate_lifetime
from repro.sim.result import SimulationResult
from repro.sparing.base import SpareScheme
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.util.rng import fork_seeds
from repro.wearlevel import make_scheme
from repro.wearlevel.base import WearLeveler

#: Attack names accepted by declarative tasks (plus any workload-suite name).
ATTACKS: Tuple[str, ...] = ("uaa", "bpa", "repeated")

#: Sparing-scheme names accepted by declarative tasks.
SPARINGS: Tuple[str, ...] = ("none", "pcd", "ps", "ps-worst", "max-we")

#: Wear-leveler names accepted by declarative tasks.
WEARLEVELERS: Tuple[str, ...] = (
    "none", "start-gap", "tlsr", "pcm-s", "bwl", "wawl", "toss-up"
)

#: Below this many uncached tasks a process pool costs more than it saves.
MIN_PARALLEL_TASKS: int = 2


# ----------------------------------------------------------------------
# Component builders (the CLI/batch vocabulary, shared by every surface)
# ----------------------------------------------------------------------


def build_attack(name: str) -> AttackModel:
    """Instantiate an attack or workload model by spec name."""
    if name == "uaa":
        return UniformAddressAttack()
    if name == "bpa":
        return BirthdayParadoxAttack()
    if name == "repeated":
        return RepeatedAddressAttack()
    if name in WORKLOAD_NAMES:
        return workload(name)
    raise ValueError(
        f"unknown attack {name!r}; choose from {ATTACKS} "
        f"or the workload suite {WORKLOAD_NAMES}"
    )


def build_sparing(name: str, p: float, swr: float) -> SpareScheme:
    """Instantiate a sparing scheme by spec name."""
    if name == "none":
        return NoSparing()
    if name == "pcd":
        return PCD(p)
    if name == "ps":
        return PS.average_case(p)
    if name == "ps-worst":
        return PS.worst_case(p)
    if name == "max-we":
        return MaxWE(p, swr)
    raise ValueError(f"unknown sparing {name!r}; choose from {SPARINGS}")


def build_wearleveler(name: str) -> Optional[WearLeveler]:
    """Instantiate a wear-leveler by spec name (``None`` for ``"none"``)."""
    if name == "none":
        return None
    if name in WEARLEVELERS:
        return make_scheme(name, lines_per_region=1)
    raise ValueError(f"unknown wearlevel {name!r}; choose from {WEARLEVELERS}")


# ----------------------------------------------------------------------
# Task specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SimTask:
    """One declarative, pickle-safe, content-addressable simulation.

    Attributes
    ----------
    attack / sparing / wearlevel:
        Component names from the batch vocabulary (:data:`ATTACKS`,
        :data:`SPARINGS`, :data:`WEARLEVELERS` / workload suite).
    p / swr:
        Spare fraction and SWR share for the schemes that take them.
    config:
        Device configuration; its seed drives endurance-map placement.
    seed:
        Simulation master seed (sparing / wear-leveling streams).
        ``None`` defaults to ``config.seed``, matching the sweep drivers.
    emap_seed:
        Optional placement-seed override: the endurance map is rebuilt
        from ``config`` with this seed (Monte-Carlo placement variance).
    engine:
        Lifetime engine (see :data:`repro.sim.lifetime.ENGINES`);
        defaults to the vectorized ``"fluid-batched"`` kernel.
    record_timeline:
        Whether the simulation records per-death timeline events.  Off by
        default: batch/sweep surfaces aggregate scalar results, and the
        timeline is never cached anyway.
    label:
        Cosmetic row label; excluded from the cache key so relabelled
        reruns still hit.
    """

    attack: str = "uaa"
    sparing: str = "max-we"
    wearlevel: str = "none"
    p: float = 0.1
    swr: float = 0.9
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    seed: Optional[int] = None
    emap_seed: Optional[int] = None
    engine: str = "fluid-batched"
    record_timeline: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", normalize_engine(self.engine))
        if self.attack not in ATTACKS and self.attack not in WORKLOAD_NAMES:
            raise ValueError(
                f"unknown attack {self.attack!r}; choose from {ATTACKS} "
                f"or the workload suite {WORKLOAD_NAMES}"
            )
        if self.sparing not in SPARINGS:
            raise ValueError(
                f"unknown sparing {self.sparing!r}; choose from {SPARINGS}"
            )
        if self.wearlevel not in WEARLEVELERS:
            raise ValueError(
                f"unknown wearlevel {self.wearlevel!r}; choose from {WEARLEVELERS}"
            )

    @property
    def effective_seed(self) -> int:
        """The simulation seed actually used (defaults to the config's)."""
        return self.config.seed if self.seed is None else self.seed

    def make_emap(self) -> EnduranceMap:
        """Materialize the task's endurance map (placement override aware)."""
        if self.emap_seed is not None:
            return self.config.with_(seed=self.emap_seed).make_emap()
        return self.config.make_emap()

    def cache_payload(self) -> Dict[str, object]:
        """Canonical mapping of everything that determines the result.

        Exactly the execution-relevant fields: the label and the config
        knobs the task overrides (``spare_fraction`` / ``swr_fraction``)
        are deliberately excluded so cosmetic changes still hit.
        """
        return {
            "attack": self.attack,
            "sparing": self.sparing,
            "wearlevel": self.wearlevel,
            "p": float(self.p),
            "swr": float(self.swr),
            "seed": int(self.effective_seed),
            "emap_seed": None if self.emap_seed is None else int(self.emap_seed),
            "engine": self.engine,
            "config": {
                "regions": self.config.regions,
                "lines_per_region": self.config.lines_per_region,
                "q": float(self.config.q),
                "endurance_model": self.config.endurance_model,
                "seed": self.config.seed,
            },
        }

    def execute(self) -> Tuple[SimulationResult, float]:
        """Run the simulation; returns ``(result, wall_seconds)``."""
        start = perf_counter()
        result = simulate_lifetime(
            self.make_emap(),
            build_attack(self.attack),
            build_sparing(self.sparing, self.p, self.swr),
            wearleveler=build_wearleveler(self.wearlevel),
            rng=self.effective_seed,
            engine=self.engine,
            record_timeline=self.record_timeline,
        )
        return result, perf_counter() - start


@dataclass(frozen=True)
class CallableTask:
    """A factory-based simulation for components that cannot be named.

    Used by the Monte-Carlo driver (and any custom harness) whose
    attack/sparing/wear-leveling components come as zero-argument
    factories.  Parallel execution requires the factories to be picklable
    (module-level callables / functools.partial); the runner falls back
    to serial execution otherwise.  Not content-addressable, so never
    cached.
    """

    attack_factory: Callable[[], AttackModel]
    sparing_factory: Callable[[], SpareScheme]
    emap_factory: Callable[[int], EnduranceMap]
    seed: int
    wearleveler_factory: Optional[Callable[[], WearLeveler]] = None
    engine: str = "fluid-batched"
    record_timeline: bool = False
    label: str = ""

    def execute(self) -> Tuple[SimulationResult, float]:
        """Run the simulation; returns ``(result, wall_seconds)``.

        Factories are invoked in the same order as the historical serial
        Monte-Carlo loop (wear-leveler, emap, attack, sparing) so stateful
        factories observe an identical call sequence.
        """
        start = perf_counter()
        wearleveler = (
            self.wearleveler_factory() if self.wearleveler_factory else None
        )
        emap = self.emap_factory(self.seed)
        result = simulate_lifetime(
            emap,
            self.attack_factory(),
            self.sparing_factory(),
            wearleveler=wearleveler,
            rng=self.seed,
            engine=self.engine,
            record_timeline=self.record_timeline,
        )
        return result, perf_counter() - start


AnyTask = Union[SimTask, CallableTask]


def fork_task_seeds(seed: Optional[int], count: int, label: str = "sim-runner") -> List[int]:
    """Derive ``count`` deterministic per-task seeds from a master seed."""
    return fork_seeds(seed, count, label)


def _execute_task(task: AnyTask) -> Tuple[SimulationResult, float]:
    """Module-level worker entry point (picklable for process pools)."""
    return task.execute()


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunnerStats:
    """Execution statistics of one :meth:`SimRunner.run_detailed` call.

    Attributes
    ----------
    tasks:
        Number of tasks submitted.
    simulated:
        Tasks that actually ran (cache misses + uncacheable tasks).
    cache_hits:
        Tasks served from the result cache without simulating.
    jobs:
        Worker-process count used for the simulated tasks (1 = serial).
    wall_seconds:
        End-to-end wall time of the call.
    task_seconds:
        Per-task simulation wall times, in submission order (0.0 for
        cache hits).
    """

    tasks: int
    simulated: int
    cache_hits: int
    jobs: int
    wall_seconds: float
    task_seconds: Tuple[float, ...] = ()

    @property
    def sims_per_second(self) -> float:
        """Simulated-task throughput over the call's wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.simulated / self.wall_seconds

    def __str__(self) -> str:
        return (
            f"{self.tasks} tasks ({self.cache_hits} cached, "
            f"{self.simulated} simulated) in {self.wall_seconds:.2f}s "
            f"with {self.jobs} job(s) -- {self.sims_per_second:.1f} sims/s"
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def _picklable(tasks: Sequence[AnyTask]) -> bool:
    try:
        pickle.dumps(tuple(tasks))
        return True
    except Exception:
        return False


class SimRunner:
    """Execute independent simulation tasks, in parallel when it pays.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs serially in-process, 0 or
        ``None`` uses every CPU.
    cache:
        Optional :class:`ResultCache`; declarative :class:`SimTask`\\ s
        are looked up before simulating and stored after.
        :class:`CallableTask`\\ s always simulate.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:
        self._jobs = resolve_jobs(jobs)
        self._cache = cache

    @property
    def jobs(self) -> int:
        """Resolved worker count."""
        return self._jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        """The attached result cache, if any."""
        return self._cache

    def run(self, tasks: Sequence[AnyTask]) -> List[SimulationResult]:
        """Execute ``tasks``; results in submission order."""
        results, _ = self.run_detailed(tasks)
        return results

    def run_detailed(
        self, tasks: Sequence[AnyTask]
    ) -> Tuple[List[SimulationResult], RunnerStats]:
        """Execute ``tasks``; returns ordered results plus statistics."""
        tasks = list(tasks)
        started = perf_counter()
        results: List[Optional[SimulationResult]] = [None] * len(tasks)
        seconds = [0.0] * len(tasks)

        pending: List[int] = []
        for index, task in enumerate(tasks):
            cached = (
                self._cache.get(task)
                if self._cache is not None and isinstance(task, SimTask)
                else None
            )
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        jobs_used = 1
        if pending:
            to_run = [tasks[index] for index in pending]
            jobs_used = min(self._jobs, len(pending))
            if jobs_used >= MIN_PARALLEL_TASKS and len(pending) >= MIN_PARALLEL_TASKS \
                    and _picklable(to_run):
                outcomes = self._run_parallel(to_run, jobs_used)
            else:
                jobs_used = 1
                outcomes = [_execute_task(task) for task in to_run]
            for index, (result, elapsed) in zip(pending, outcomes):
                results[index] = result
                seconds[index] = elapsed
                if self._cache is not None and isinstance(tasks[index], SimTask):
                    self._cache.put(tasks[index], result, elapsed)

        stats = RunnerStats(
            tasks=len(tasks),
            simulated=len(pending),
            cache_hits=len(tasks) - len(pending),
            jobs=jobs_used,
            wall_seconds=perf_counter() - started,
            task_seconds=tuple(seconds),
        )
        assert all(result is not None for result in results)
        return list(results), stats  # type: ignore[arg-type]

    @staticmethod
    def _run_parallel(
        tasks: Sequence[AnyTask], jobs: int
    ) -> List[Tuple[SimulationResult, float]]:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_execute_task, task) for task in tasks]
            return [future.result() for future in futures]
