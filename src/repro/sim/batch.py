"""Batch experiment runner: declarative specs in, archived results out.

Larger studies want to declare *what* to run, not write driver loops.
:func:`run_batch` takes a list of :class:`RunSpec` (or plain dicts, e.g.
parsed from a JSON file), executes each through the fluid simulator, and
returns a :class:`BatchResult` that renders as a table and serializes to
JSON for archiving.  The ``repro-nvm batch`` subcommand wraps it.

Spec fields mirror the CLI's vocabulary::

    [
      {"label": "paper point", "attack": "uaa", "sparing": "max-we"},
      {"label": "bpa on wawl", "attack": "bpa", "sparing": "max-we",
       "wearlevel": "wawl"},
      {"label": "unprotected", "attack": "uaa", "sparing": "none"}
    ]
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.attacks.suite import WORKLOAD_NAMES
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import ResultCache
from repro.sim.config import ExperimentConfig
from repro.sim.resilience import Checkpoint, ResiliencePolicy
from repro.sim.result import SimulationResult
from repro.sim.runner import (
    ATTACKS,
    SPARINGS,
    WEARLEVELERS,
    SimRunner,
    SimTask,
    build_attack,
    build_sparing,
    build_wearleveler,
)
from repro.util.tables import render_table
from repro.util.validation import require_fraction


@dataclass(frozen=True)
class RunSpec:
    """One declarative experiment.

    Attributes
    ----------
    label:
        Row label in the output table.
    attack:
        One of :data:`ATTACKS` or a workload-suite name.
    sparing:
        One of :data:`SPARINGS`.
    wearlevel:
        One of :data:`WEARLEVELERS`.
    p / swr:
        Spare fraction and SWR share (for the schemes that take them).
    """

    label: str
    attack: str = "uaa"
    sparing: str = "max-we"
    wearlevel: str = "none"
    p: float = 0.1
    swr: float = 0.9

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("spec needs a non-empty label")
        if self.attack not in ATTACKS and self.attack not in WORKLOAD_NAMES:
            raise ValueError(
                f"unknown attack {self.attack!r}; choose from {ATTACKS} "
                f"or the workload suite {WORKLOAD_NAMES}"
            )
        if self.sparing not in SPARINGS:
            raise ValueError(f"unknown sparing {self.sparing!r}; choose from {SPARINGS}")
        if self.wearlevel not in WEARLEVELERS:
            raise ValueError(
                f"unknown wearlevel {self.wearlevel!r}; choose from {WEARLEVELERS}"
            )
        require_fraction(self.p, "p")
        require_fraction(self.swr, "swr")

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSpec":
        """Build a spec from a plain dict (unknown keys rejected)."""
        allowed = {"label", "attack", "sparing", "wearlevel", "p", "swr"}
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(f"unknown spec fields {sorted(unknown)}")
        return cls(**payload)

    def to_dict(self) -> Dict:
        """Plain-dict form (the wire format; round-trips via ``from_dict``)."""
        return {
            "label": self.label,
            "attack": self.attack,
            "sparing": self.sparing,
            "wearlevel": self.wearlevel,
            "p": self.p,
            "swr": self.swr,
        }

    def build_attack(self):
        return build_attack(self.attack)

    def build_sparing(self):
        return build_sparing(self.sparing, self.p, self.swr)

    def build_wearleveler(self):
        return build_wearleveler(self.wearlevel)

    def to_task(
        self,
        config: ExperimentConfig,
        engine: str = "fluid-batched",
        paranoia: str = "off",
        shadow_sample: float = 0.0,
    ) -> SimTask:
        """The declarative runner task equivalent to this spec."""
        return SimTask(
            attack=self.attack,
            sparing=self.sparing,
            wearlevel=self.wearlevel,
            p=self.p,
            swr=self.swr,
            config=config,
            engine=engine,
            paranoia=paranoia,
            shadow_sample=shadow_sample,
            label=self.label,
        )


@dataclass(frozen=True)
class BatchResult:
    """Results of a batch, in spec order."""

    specs: Sequence[RunSpec]
    results: Sequence[SimulationResult]
    config: ExperimentConfig = field(default_factory=ExperimentConfig)

    def __post_init__(self) -> None:
        if len(self.specs) != len(self.results):
            raise ValueError("specs and results must align")

    def __len__(self) -> int:
        return len(self.specs)

    def lifetime(self, label: str) -> float:
        """Normalized lifetime of the run labelled ``label``."""
        for spec, result in zip(self.specs, self.results):
            if spec.label == label:
                return result.normalized_lifetime
        raise KeyError(f"no run labelled {label!r}")

    def to_table(self) -> str:
        """Aligned text table of the batch."""
        rows = [
            [
                spec.label,
                spec.attack,
                spec.wearlevel,
                spec.sparing,
                result.normalized_lifetime,
            ]
            for spec, result in zip(self.specs, self.results)
        ]
        return render_table(
            ["label", "attack", "wearlevel", "sparing", "lifetime"],
            rows,
            title="batch results (normalized lifetime)",
        )

    def to_json(self, path: "str | Path | None" = None) -> str:
        """JSON archive of specs + results (timeline omitted for size)."""
        payload = {
            "config": {
                "regions": self.config.regions,
                "lines_per_region": self.config.lines_per_region,
                "q": self.config.q,
                "endurance_model": self.config.endurance_model,
                "seed": self.config.seed,
            },
            "runs": [
                {
                    "spec": spec.to_dict(),
                    "result": result.to_dict(include_timeline=False),
                }
                for spec, result in zip(self.specs, self.results)
            ],
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text


def run_batch(
    specs: Sequence["RunSpec | Dict"],
    config: ExperimentConfig | None = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    engine: str = "fluid-batched",
    policy: Optional[ResiliencePolicy] = None,
    checkpoint: "Checkpoint | str | os.PathLike | None" = None,
    metrics: Optional[MetricsRegistry] = None,
    paranoia: str = "off",
    shadow_sample: float = 0.0,
    trials_per_task: Optional[int] = None,
    backend: object = None,
    on_result: Optional[object] = None,
) -> BatchResult:
    """Execute a list of specs against one device configuration.

    Parameters
    ----------
    specs:
        Declarative run specs (or plain dicts).
    config:
        Shared device configuration; its seed seeds every run, exactly
        as the historical serial loop did.
    jobs:
        Worker processes for the underlying :class:`SimRunner` (1 =
        serial, 0/None = all CPUs).  Results are seed-deterministic and
        identical in any job count.
    cache:
        Optional content-addressed result cache; unchanged specs rerun
        instantly.
    engine:
        Lifetime engine for every run (see
        :data:`repro.sim.lifetime.ENGINES`).
    policy:
        Supervision policy (timeouts, retries, crash isolation); see
        :class:`~repro.sim.resilience.ResiliencePolicy`.
    checkpoint:
        Optional resume checkpoint (or journal path): completed runs
        stream to it and a re-invocation skips finished work.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` collecting
        runner/engine spans and counters for the batch.
    paranoia / shadow_sample:
        State-integrity verification knobs applied to every run (see
        :mod:`repro.verify.invariants`); results are bit-identical
        across levels.
    trials_per_task:
        Runs per ensemble chunk when ``engine="fluid-ensemble"``: chunked
        runs advance together in one kernel pass while every result stays
        bit-identical to its per-task dispatch.  ``None`` auto-sizes; see
        :class:`~repro.sim.runner.SimRunner`.
    backend:
        Execution backend spec (``"pool"``/``"fabric"`` or an
        :class:`~repro.sim.executor.ExecutorBackend` instance); results
        are bit-identical across backends.
    on_result:
        Optional ``(index, result, elapsed)`` observer forwarded to the
        runner; fires once per spec as its result lands (the service
        layer streams partial results through it).
    """
    if not specs:
        raise ValueError("batch needs at least one spec")
    config = config if config is not None else ExperimentConfig()
    normalized: List[RunSpec] = [
        spec if isinstance(spec, RunSpec) else RunSpec.from_dict(spec)
        for spec in specs
    ]
    runner = SimRunner(
        jobs=jobs,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        metrics=metrics,
        trials_per_task=trials_per_task,
        backend=backend,
        on_result=on_result,
    )
    results = runner.run(
        [
            spec.to_task(
                config,
                engine=engine,
                paranoia=paranoia,
                shadow_sample=shadow_sample,
            )
            for spec in normalized
        ]
    )
    return BatchResult(specs=tuple(normalized), results=tuple(results), config=config)
