"""Command-line interface: ``python -m repro`` / ``repro-nvm``.

Subcommands map one-to-one onto the paper's experiments:

* ``analyze``      -- closed-form lifetimes (Eq. 3-8) for given p, q;
* ``simulate``     -- one lifetime simulation (attack x WL x sparing);
* ``sweep-spare``  -- Figure 6's spare-capacity sweep under UAA;
* ``sweep-swr``    -- Figure 7's SWR-share sweep under BPA;
* ``compare-uaa``  -- Section 5.3.1's UAA scheme comparison;
* ``compare-bpa``  -- Figure 8's BPA scheme comparison;
* ``overhead``     -- Section 5.3.2's mapping-table overhead report.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis.lifetime import (
    maxwe_normalized,
    pcd_ps_normalized,
    ps_worst_normalized,
    uaa_fraction,
)
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.core.overhead import mapping_overhead_report, paper_overhead_geometry
from repro.obs.metrics import MetricsRegistry, maybe_span
from repro.obs.sink import build_manifest, profile_report, write_metrics
from repro.sim.config import ExperimentConfig
from repro.sim.experiments import (
    bpa_scheme_comparison,
    spare_fraction_sweep,
    swr_fraction_sweep,
    uaa_scheme_comparison,
)
from repro.sim.faults import FAULT_SPEC_ENV, FaultSpec, FaultSpecError
from repro.sim.lifetime import ENGINES, simulate_lifetime
from repro.verify.invariants import PARANOIA_LEVELS, InvariantViolation
from repro.sim.resilience import (
    Checkpoint,
    ResiliencePolicy,
    RunInterrupted,
    SimulationFailure,
    derive_checkpoint_path,
)
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.util.stats import geometric_mean
from repro.util.tables import render_table
from repro.util.validation import (
    fraction_arg,
    nonnegative_int_arg,
    positive_float_arg,
    positive_int_arg,
)
from repro.wearlevel import make_scheme


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--regions", type=positive_int_arg, default=2048, help="region count"
    )
    parser.add_argument(
        "--lines-per-region",
        type=positive_int_arg,
        default=8,
        help="lines per region (scaled)",
    )
    parser.add_argument(
        "--q", type=positive_float_arg, default=50.0, help="variation degree EH/EL"
    )
    parser.add_argument(
        "--endurance-model",
        choices=("linear", "zhang-li", "lognormal"),
        default="linear",
        help="endurance distribution family",
    )
    parser.add_argument("--seed", type=int, default=2019, help="experiment seed")


def _jobs_count(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = all CPUs)")
    return jobs


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="fluid-batched",
        help="lifetime engine: vectorized epoch kernel (default), the "
        "scalar event loop kept for differential testing, or the "
        "trial-stacked ensemble that advances many runs per kernel pass "
        "(bit-identical per run)",
    )


def _trials_per_task_arg(value: str) -> int:
    try:
        trials = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"trials-per-task must be an integer, got {value!r}"
        )
    if trials < 1:
        raise argparse.ArgumentTypeError("trials-per-task must be >= 1")
    return trials


def _add_trials_per_task_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trials-per-task",
        type=_trials_per_task_arg,
        default=None,
        metavar="N",
        help="runs per ensemble chunk with --engine fluid-ensemble "
        "(default: auto-sized from the run count and --jobs)",
    )


def _fault_spec_arg(text: str) -> str:
    try:
        FaultSpec.parse(text)
    except FaultSpecError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def _add_verify_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--paranoia",
        choices=PARANOIA_LEVELS,
        default="off",
        help="state-integrity checking level: 'cheap' = O(1) invariants "
        "at a cadence plus a full end-of-run sweep, 'full' = every "
        "invariant every round; never changes results (see "
        "docs/verification.md)",
    )
    parser.add_argument(
        "--shadow-sample",
        type=fraction_arg,
        default=0.0,
        metavar="P",
        help="probability of differentially re-running a fluid-batched "
        "simulation on the exact reference engine and escalating any "
        "divergence (deterministic per-task sampling)",
    )


def _verify_kwargs(args: argparse.Namespace) -> dict:
    return {
        "paranoia": getattr(args, "paranoia", "off"),
        "shadow_sample": getattr(args, "shadow_sample", 0.0),
    }


def _add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write a JSONL metrics file (manifest + deterministic "
        "counters/histograms/spans; see docs/observability.md)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-time breakdown after the command",
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    _add_metrics_arguments(parser)
    _add_verify_arguments(parser)
    parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes for independent simulations (0 = all CPUs)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache (.repro-cache/)",
    )
    parser.add_argument(
        "--timeout",
        type=positive_float_arg,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock limit; a task over it is retried, then "
        "recorded as failed (default: no limit)",
    )
    parser.add_argument(
        "--retries",
        type=nonnegative_int_arg,
        default=2,
        metavar="N",
        help="extra attempts per task after crash/timeout/transient "
        "errors (default: 2)",
    )
    outcome = parser.add_mutually_exclusive_group()
    outcome.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop dispatching new tasks after the first terminal failure",
    )
    outcome.add_argument(
        "--keep-going",
        action="store_false",
        dest="fail_fast",
        help="run every task even if some fail (default)",
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        metavar="PATH",
        help="append finished results to this JSONL journal and skip "
        "entries already in it (implies --resume semantics)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint under a derived path in .repro-checkpoints/ "
        "(or $REPRO_CHECKPOINT_DIR); re-running the same command skips "
        "finished work",
    )
    parser.add_argument(
        "--inject-faults",
        type=_fault_spec_arg,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for resilience testing, e.g. "
        "'crash=0.2,hang=0.05,transient=0.1,seed=7' (see repro.sim.faults)",
    )
    parser.add_argument(
        "--backend",
        choices=("pool", "fabric"),
        default="pool",
        help="execution backend: local process pool (default) or the "
        "lease-based multi-host fabric (results are bit-identical)",
    )
    parser.add_argument(
        "--workers",
        type=positive_int_arg,
        default=None,
        metavar="N",
        help="fabric worker processes (default: --jobs); fabric only",
    )
    parser.add_argument(
        "--lease-ttl",
        type=positive_float_arg,
        default=None,
        metavar="SECONDS",
        help="fabric lease time-to-live without a heartbeat before the "
        "task is requeued (default: 10); fabric only",
    )


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        regions=args.regions,
        lines_per_region=args.lines_per_region,
        q=args.q,
        endurance_model=args.endurance_model,
        seed=args.seed,
    )


def _cache_from(args: argparse.Namespace):
    if getattr(args, "no_cache", False):
        return None
    from repro.sim.cache import ResultCache

    return ResultCache()


def _print_cache_stats(cache) -> None:
    if cache is not None and cache.stats.lookups:
        print(f"[cache {cache.stats} under {cache.root}]")


def _metrics_from(args: argparse.Namespace) -> "MetricsRegistry | None":
    """A registry when ``--metrics-out``/``--profile`` asked for one."""
    if getattr(args, "metrics_out", None) or getattr(args, "profile", False):
        return MetricsRegistry()
    return None


def _emit_metrics(
    args: argparse.Namespace,
    metrics: "MetricsRegistry | None",
    config: ExperimentConfig | None = None,
) -> None:
    """Write ``--metrics-out`` and print ``--profile`` for the command.

    The manifest carries the run's identity (command, config + hash,
    engine, jobs) plus the headline resilience counters; every
    wall-clock quantity stays manifest-only so the body is reproducible.
    """
    if metrics is None:
        return
    config_payload = None
    if config is not None:
        config_payload = {
            "regions": config.regions,
            "lines_per_region": config.lines_per_region,
            "q": config.q,
            "endurance_model": config.endurance_model,
            "seed": config.seed,
        }
    manifest = build_manifest(
        metrics,
        command=args.command,
        config=config_payload,
        engine=getattr(args, "engine", None),
        jobs=getattr(args, "jobs", None),
        extra={
            "cache_hits": metrics.counter("cache.hits"),
            "cache_misses": metrics.counter("cache.misses"),
            "retries": metrics.counter("runner.retries"),
            "pool_respawns": metrics.counter("runner.pool_respawns"),
            **(
                {
                    "backend": "fabric",
                    "leases_granted": metrics.counter("fabric.leases_granted"),
                    "leases_expired": metrics.counter("fabric.leases_expired"),
                    "steals": metrics.counter("fabric.steals"),
                    "requeues": metrics.counter("fabric.requeues"),
                    "duplicate_commits": metrics.counter(
                        "fabric.duplicate_commits"
                    ),
                    "late_commits": metrics.counter("fabric.late_commits"),
                    "workers_lost": metrics.counter("fabric.workers_lost"),
                    "workers_respawned": metrics.counter(
                        "fabric.workers_respawned"
                    ),
                    "local_fallback_tasks": metrics.counter(
                        "fabric.local_fallback_tasks"
                    ),
                    "coordinator_restarts": metrics.counter(
                        "fabric.coordinator_restarts"
                    ),
                    "active_leases": metrics.gauge_value("fabric.active_leases"),
                    "degraded": bool(metrics.gauge_value("runner.degraded")),
                }
                if getattr(args, "backend", "pool") == "fabric"
                else {}
            ),
        },
    )
    if getattr(args, "metrics_out", None):
        path = write_metrics(args.metrics_out, metrics, manifest)
        print(f"[metrics written to {path}]")
    if getattr(args, "profile", False):
        print(profile_report(manifest))


def _backend_from(args: argparse.Namespace):
    """Build the executor backend the command asked for.

    ``None`` keeps the runner's default process pool; ``--backend
    fabric`` constructs a :class:`~repro.fabric.backend.FabricBackend`
    with ``--workers`` / ``--lease-ttl`` applied.
    """
    name = getattr(args, "backend", "pool")
    if name != "fabric":
        return None
    from repro.fabric.backend import DEFAULT_LEASE_TTL, FabricBackend

    lease_ttl = getattr(args, "lease_ttl", None)
    return FabricBackend(
        workers=getattr(args, "workers", None),
        lease_ttl=DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl,
    )


def _policy_from(args: argparse.Namespace) -> ResiliencePolicy:
    return ResiliencePolicy(
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 2),
        fail_fast=getattr(args, "fail_fast", False),
    )


def _checkpoint_from(
    args: argparse.Namespace, config: ExperimentConfig, extra: dict | None = None
) -> "Checkpoint | None":
    """The run's checkpoint journal, or ``None`` when not requested.

    ``--checkpoint PATH`` names the journal explicitly; ``--resume``
    derives a content-keyed path from the command + configuration +
    engine so re-running the identical command resumes the same journal.
    """
    if getattr(args, "checkpoint", None):
        return Checkpoint(args.checkpoint, resume=True)
    if not getattr(args, "resume", False):
        return None
    payload = {
        "command": args.command,
        "engine": getattr(args, "engine", None),
        "config": {
            "regions": config.regions,
            "lines_per_region": config.lines_per_region,
            "q": config.q,
            "endurance_model": config.endurance_model,
            "seed": config.seed,
        },
    }
    if extra:
        payload.update(extra)
    path = derive_checkpoint_path(args.command, payload)
    print(f"[checkpoint journal: {path}]")
    return Checkpoint(path, resume=True)


def _install_faults(args: argparse.Namespace) -> None:
    """Activate ``--inject-faults`` for this process and all pool workers.

    The variable is restored by :func:`main` after the command finishes,
    so in-process callers (tests, notebooks) are not left with an active
    fault campaign.
    """
    spec = getattr(args, "inject_faults", None)
    if spec:
        os.environ[FAULT_SPEC_ENV] = spec


def _cmd_analyze(args: argparse.Namespace) -> int:
    rows = [
        ["no-protection (Eq. 5)", uaa_fraction(args.q)],
        ["ps-worst (Eq. 8)", ps_worst_normalized(args.p, args.q)],
        ["pcd-ps (Eq. 7)", pcd_ps_normalized(args.p, args.q)],
        ["max-we (Eq. 6)", maxwe_normalized(args.p, args.q)],
    ]
    print(
        render_table(
            ["scheme", "normalized lifetime"],
            rows,
            title=f"Closed-form lifetimes under UAA (p={args.p}, q={args.q})",
        )
    )
    return 0


def _make_attack(name: str):
    if name == "uaa":
        return UniformAddressAttack()
    if name == "bpa":
        return BirthdayParadoxAttack()
    if name == "repeated":
        return RepeatedAddressAttack()
    raise ValueError(f"unknown attack {name!r}")


def _make_sparing(name: str, p: float, swr: float):
    if name == "none":
        return NoSparing()
    if name == "pcd":
        return PCD(p)
    if name == "ps":
        return PS.average_case(p)
    if name == "ps-worst":
        return PS.worst_case(p)
    if name == "max-we":
        return MaxWE(p, swr)
    raise ValueError(f"unknown sparing scheme {name!r}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.runner import SimTask

    config = _config_from(args)
    metrics = _metrics_from(args)
    _install_faults(args)
    # Routed through a declarative task (rather than a direct
    # simulate_lifetime call) so a violation's crash-dump bundle pins the
    # full task payload and `python -m repro.verify replay` can re-run it.
    task = SimTask(
        attack=args.attack,
        sparing=args.sparing,
        wearlevel=args.wearlevel,
        p=args.p,
        swr=args.swr,
        config=config,
        engine=args.engine,
        record_timeline=True,
        **_verify_kwargs(args),
    )
    with maybe_span(metrics, "cli/total"):
        result, _ = task.execute(metrics=metrics)
    print(f"attack:      {result.metadata['attack']}")
    print(f"wear-level:  {result.metadata['wearleveler']}")
    print(f"sparing:     {result.metadata['sparing']}")
    print(f"lifetime:    {result.normalized_lifetime:.2%} of ideal")
    print(f"deaths:      {result.deaths} ({result.replacements} replaced)")
    print(f"failure:     {result.failure_reason}")
    _emit_metrics(args, metrics, config)
    return 0


def _cmd_sweep_spare(args: argparse.Namespace) -> int:
    config = _config_from(args)
    cache = _cache_from(args)
    metrics = _metrics_from(args)
    _install_faults(args)
    with maybe_span(metrics, "cli/total"):
        rows = [
            [f"{fraction:.0%}", result.normalized_lifetime]
            for fraction, result in spare_fraction_sweep(
                config,
                jobs=args.jobs,
                trials_per_task=args.trials_per_task,
                cache=cache,
                engine=args.engine,
                policy=_policy_from(args),
                checkpoint=_checkpoint_from(args, config),
                metrics=metrics,
                backend=_backend_from(args),
                **_verify_kwargs(args),
            )
        ]
    print(
        render_table(
            ["spare capacity", "normalized lifetime"],
            rows,
            title="Figure 6: Max-WE under UAA vs spare capacity",
        )
    )
    _print_cache_stats(cache)
    _emit_metrics(args, metrics, config)
    return 0


def _cmd_sweep_swr(args: argparse.Namespace) -> int:
    config = _config_from(args)
    cache = _cache_from(args)
    metrics = _metrics_from(args)
    _install_faults(args)
    with maybe_span(metrics, "cli/total"):
        sweeps = swr_fraction_sweep(
            config,
            jobs=args.jobs,
            trials_per_task=args.trials_per_task,
            cache=cache,
            engine=args.engine,
            policy=_policy_from(args),
            checkpoint=_checkpoint_from(args, config),
            metrics=metrics,
            backend=_backend_from(args),
            **_verify_kwargs(args),
        )
    fractions = [fraction for fraction, _ in next(iter(sweeps.values()))]
    headers = ["wear-leveler"] + [f"{fraction:.0%}" for fraction in fractions]
    rows = [
        [name] + [result.normalized_lifetime for _, result in series]
        for name, series in sweeps.items()
    ]
    print(
        render_table(
            headers, rows, title="Figure 7: Max-WE under BPA vs SWR share of spares"
        )
    )
    _print_cache_stats(cache)
    _emit_metrics(args, metrics, config)
    return 0


def _cmd_compare_uaa(args: argparse.Namespace) -> int:
    config = _config_from(args)
    cache = _cache_from(args)
    metrics = _metrics_from(args)
    _install_faults(args)
    with maybe_span(metrics, "cli/total"):
        results = uaa_scheme_comparison(
            config,
            jobs=args.jobs,
            trials_per_task=args.trials_per_task,
            cache=cache,
            engine=args.engine,
            policy=_policy_from(args),
            checkpoint=_checkpoint_from(args, config),
            metrics=metrics,
            backend=_backend_from(args),
            **_verify_kwargs(args),
        )
    baseline = results["no-protection"].normalized_lifetime
    rows = [
        [name, result.normalized_lifetime, result.normalized_lifetime / baseline]
        for name, result in results.items()
    ]
    print(
        render_table(
            ["scheme", "normalized lifetime", "improvement (X)"],
            rows,
            title="Section 5.3.1: lifetimes under UAA (10% spares)",
        )
    )
    _print_cache_stats(cache)
    _emit_metrics(args, metrics, config)
    return 0


def _cmd_compare_bpa(args: argparse.Namespace) -> int:
    config = _config_from(args)
    cache = _cache_from(args)
    metrics = _metrics_from(args)
    _install_faults(args)
    with maybe_span(metrics, "cli/total"):
        comparison = bpa_scheme_comparison(
            config,
            jobs=args.jobs,
            trials_per_task=args.trials_per_task,
            cache=cache,
            engine=args.engine,
            policy=_policy_from(args),
            checkpoint=_checkpoint_from(args, config),
            metrics=metrics,
            backend=_backend_from(args),
            **_verify_kwargs(args),
        )
    wearlevelers = list(next(iter(comparison.values())).keys())
    headers = ["scheme"] + wearlevelers + ["gmean"]
    rows = []
    for name, row in comparison.items():
        lifetimes = [row[wl].normalized_lifetime for wl in wearlevelers]
        rows.append([name] + lifetimes + [geometric_mean(lifetimes)])
    print(
        render_table(
            headers, rows, title="Figure 8: sparing schemes under BPA (90% SWRs)"
        )
    )
    _print_cache_stats(cache)
    _emit_metrics(args, metrics, config)
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    geometry = paper_overhead_geometry()
    report = mapping_overhead_report(geometry, args.p, args.swr)
    print("Section 5.3.2: mapping-table overhead (1 GB, 2048 regions)")
    print(f"  LMT:              {report.lmt_bits} bits")
    print(f"  RMT:              {report.rmt_bits} bits")
    print(f"  wear-out tags:    {report.tag_bits} bits")
    print(f"  Max-WE total:     {report.hybrid_mib:.2f} MB")
    print(f"  all-line-level:   {report.line_level_mib:.2f} MB")
    print(f"  reduction:        {report.reduction:.1%}")
    print(f"  share of device:  {report.mapping_fraction_of_capacity:.3%}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json as _json

    from repro.sim.batch import run_batch

    try:
        specs = _json.loads(open(args.specs).read())
    except FileNotFoundError:
        print(f"error: spec file {args.specs!r} not found")
        return 1
    except _json.JSONDecodeError as error:
        print(f"error: spec file {args.specs!r} is not valid JSON: {error}")
        return 1
    config = _config_from(args)
    cache = _cache_from(args)
    metrics = _metrics_from(args)
    _install_faults(args)
    try:
        with maybe_span(metrics, "cli/total"):
            batch = run_batch(
                specs,
                config,
                jobs=args.jobs,
                trials_per_task=args.trials_per_task,
                cache=cache,
                engine=args.engine,
                policy=_policy_from(args),
                checkpoint=_checkpoint_from(args, config, {"specs": specs}),
                metrics=metrics,
                backend=_backend_from(args),
                **_verify_kwargs(args),
            )
    except (ValueError, TypeError) as error:
        print(f"error: invalid batch spec: {error}")
        return 1
    print(batch.to_table())
    _print_cache_stats(cache)
    _emit_metrics(args, metrics, config)
    if args.output:
        batch.to_json(args.output)
        print(f"\narchive written to {args.output}")
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.host, args.port)


def _cmd_service_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.client import ServiceError

    try:
        specs = _json.loads(open(args.specs).read())
    except FileNotFoundError:
        print(f"error: spec file {args.specs!r} not found")
        return 1
    except _json.JSONDecodeError as error:
        print(f"error: spec file {args.specs!r} is not valid JSON: {error}")
        return 1
    config = _config_from(args)
    config_dict = {
        "regions": config.regions,
        "lines_per_region": config.lines_per_region,
        "q": config.q,
        "endurance_model": config.endurance_model,
        "seed": config.seed,
    }
    client = _service_client(args)
    try:
        document = client.submit(
            specs,
            config_dict,
            tenant=args.tenant,
            engine=args.engine,
        )
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(
            f"error: cannot reach service at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    print(f"job {document['job_id']} {document['status']}")
    if not args.wait:
        return 0
    for event in client.stream_events(document["job_id"]):
        print(_json.dumps(event))
    final = client.status(document["job_id"])
    if final["status"] != "done":
        print(f"error: job {final['status']}: {final['error']}", file=sys.stderr)
        return 1
    text = client.results(document["job_id"])
    if args.output:
        open(args.output, "w").write(text)
        print(f"results written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_service_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        if args.job_id:
            print(_json.dumps(client.status(args.job_id), indent=2))
        else:
            for document in client.list_jobs():
                print(_json.dumps(document))
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(
            f"error: cannot reach service at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_service_results(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        text = client.results(args.job_id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(
            f"error: cannot reach service at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    if args.output:
        open(args.output, "w").write(text)
        print(f"results written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_record_trace(args: argparse.Namespace) -> int:
    from repro.trace.record import record_trace

    trace = record_trace(
        _make_attack(args.attack), args.user_lines, args.length, rng=args.seed
    )
    path = trace.save(args.output)
    print(f"recorded {len(trace)} writes from {trace.source!r} to {path}")
    return 0


def _cmd_classify_trace(args: argparse.Namespace) -> int:
    from repro.trace.format import WriteTrace
    from repro.trace.stats import analyze_trace

    trace = WriteTrace.load(args.trace)
    stats = analyze_trace(trace)
    print(f"trace:        {args.trace} ({len(trace)} writes, {trace.source!r})")
    print(f"kind:         {stats.kind}")
    print(f"uniformity:   {stats.uniformity:.2f} (1 = indistinguishable from uniform)")
    print(f"burstiness:   {stats.burstiness:.2f}")
    print(f"touched:      {stats.touched_lines}/{stats.user_lines} lines")
    print(f"max share:    {stats.max_share:.2%}")
    return 0


def _cmd_replay_trace(args: argparse.Namespace) -> int:
    from repro.trace.format import WriteTrace
    from repro.trace.replay import TraceAttack

    config = _config_from(args)
    trace = WriteTrace.load(args.trace)
    emap = config.make_emap()
    sparing = _make_sparing(args.sparing, args.p, args.swr)
    try:
        result = simulate_lifetime(
            emap, TraceAttack(trace), sparing, rng=config.seed, engine=args.engine
        )
    except ValueError as error:
        print(
            f"error: {error}\nadjust --regions/--lines-per-region/--p so the "
            "device's user space matches the trace's address space"
        )
        return 1
    print(f"trace:       {trace.source!r} ({len(trace)} writes, looped)")
    print(f"sparing:     {result.metadata['sparing']}")
    print(f"lifetime:    {result.normalized_lifetime:.2%} of ideal")
    print(f"failure:     {result.failure_reason}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.report import generate_report

    document = generate_report(_config_from(args), args.output)
    if args.output:
        print(f"report written to {args.output}")
    else:
        print(document)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-nvm",
        description="Reproduction of the DAC'19 Max-WE spare-line replacement paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="closed-form lifetimes (Eq. 3-8)")
    analyze.add_argument("--p", type=fraction_arg, default=0.1, help="spare fraction")
    analyze.add_argument(
        "--q", type=positive_float_arg, default=50.0, help="variation degree"
    )
    analyze.set_defaults(handler=_cmd_analyze)

    simulate = subparsers.add_parser("simulate", help="one lifetime simulation")
    _add_config_arguments(simulate)
    simulate.add_argument(
        "--attack", choices=("uaa", "bpa", "repeated"), default="uaa"
    )
    simulate.add_argument(
        "--wearlevel",
        choices=("none", "start-gap", "tlsr", "pcm-s", "bwl", "wawl", "toss-up"),
        default="none",
    )
    simulate.add_argument(
        "--sparing",
        choices=("none", "pcd", "ps", "ps-worst", "max-we"),
        default="max-we",
    )
    _add_engine_argument(simulate)
    _add_metrics_arguments(simulate)
    _add_verify_arguments(simulate)
    simulate.add_argument(
        "--inject-faults",
        type=_fault_spec_arg,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. 'corrupt-state=1,seed=7' "
        "(see repro.sim.faults); pair with --paranoia to exercise the "
        "integrity guards",
    )
    simulate.add_argument("--p", type=fraction_arg, default=0.1, help="spare fraction")
    simulate.add_argument(
        "--swr", type=fraction_arg, default=0.9, help="SWR share of spares"
    )
    simulate.set_defaults(handler=_cmd_simulate)

    sweep_spare = subparsers.add_parser("sweep-spare", help="Figure 6 sweep")
    _add_config_arguments(sweep_spare)
    _add_runner_arguments(sweep_spare)
    _add_engine_argument(sweep_spare)
    _add_trials_per_task_argument(sweep_spare)
    sweep_spare.set_defaults(handler=_cmd_sweep_spare)

    sweep_swr = subparsers.add_parser("sweep-swr", help="Figure 7 sweep")
    _add_config_arguments(sweep_swr)
    _add_runner_arguments(sweep_swr)
    _add_engine_argument(sweep_swr)
    _add_trials_per_task_argument(sweep_swr)
    sweep_swr.set_defaults(handler=_cmd_sweep_swr)

    compare_uaa = subparsers.add_parser("compare-uaa", help="Section 5.3.1 table")
    _add_config_arguments(compare_uaa)
    _add_runner_arguments(compare_uaa)
    _add_engine_argument(compare_uaa)
    _add_trials_per_task_argument(compare_uaa)
    compare_uaa.set_defaults(handler=_cmd_compare_uaa)

    compare_bpa = subparsers.add_parser("compare-bpa", help="Figure 8 comparison")
    _add_config_arguments(compare_bpa)
    _add_runner_arguments(compare_bpa)
    _add_engine_argument(compare_bpa)
    _add_trials_per_task_argument(compare_bpa)
    compare_bpa.set_defaults(handler=_cmd_compare_bpa)

    overhead = subparsers.add_parser("overhead", help="Section 5.3.2 overhead")
    overhead.add_argument("--p", type=fraction_arg, default=0.1, help="spare fraction")
    overhead.add_argument(
        "--swr", type=fraction_arg, default=0.9, help="SWR share of spares"
    )
    overhead.set_defaults(handler=_cmd_overhead)

    batch = subparsers.add_parser(
        "batch", help="run a JSON list of experiment specs"
    )
    batch.add_argument("specs", type=str, help="path to a JSON spec list")
    _add_config_arguments(batch)
    _add_runner_arguments(batch)
    _add_engine_argument(batch)
    _add_trials_per_task_argument(batch)
    batch.add_argument(
        "--output", type=str, default=None, help="also archive results as JSON"
    )
    batch.set_defaults(handler=_cmd_batch)

    def _add_service_arguments(command: argparse.ArgumentParser) -> None:
        command.add_argument("--host", default="127.0.0.1", help="service host")
        command.add_argument("--port", type=int, default=8437, help="service port")

    service_submit = subparsers.add_parser(
        "service-submit",
        help="submit a JSON spec list to a running repro service",
    )
    service_submit.add_argument("specs", type=str, help="path to a JSON spec list")
    _add_service_arguments(service_submit)
    _add_config_arguments(service_submit)
    _add_engine_argument(service_submit)
    service_submit.add_argument(
        "--tenant", default="default", help="tenant the job is billed to"
    )
    service_submit.add_argument(
        "--wait", action="store_true",
        help="stream NDJSON events until done, then print/fetch results",
    )
    service_submit.add_argument(
        "--output", type=str, default=None,
        help="with --wait: write the result body to this path",
    )
    service_submit.set_defaults(handler=_cmd_service_submit)

    service_status = subparsers.add_parser(
        "service-status", help="job status (or all jobs) from a repro service"
    )
    service_status.add_argument(
        "job_id", nargs="?", default=None, help="job id (omit to list all)"
    )
    _add_service_arguments(service_status)
    service_status.set_defaults(handler=_cmd_service_status)

    service_results = subparsers.add_parser(
        "service-results", help="fetch a finished job's result body"
    )
    service_results.add_argument("job_id", type=str, help="job id")
    _add_service_arguments(service_results)
    service_results.add_argument(
        "--output", type=str, default=None, help="write the body to this path"
    )
    service_results.set_defaults(handler=_cmd_service_results)

    record = subparsers.add_parser("record-trace", help="record an attack to a file")
    record.add_argument("--attack", choices=("uaa", "bpa", "repeated"), default="uaa")
    record.add_argument("--user-lines", type=int, default=16384)
    record.add_argument("--length", type=int, default=163840)
    record.add_argument("--seed", type=int, default=2019)
    record.add_argument("--output", type=str, required=True)
    record.set_defaults(handler=_cmd_record_trace)

    classify = subparsers.add_parser(
        "classify-trace", help="classify a trace from its statistics"
    )
    classify.add_argument("trace", type=str, help="path to a .npz trace")
    classify.set_defaults(handler=_cmd_classify_trace)

    replay = subparsers.add_parser(
        "replay-trace", help="run a lifetime simulation from a trace file"
    )
    replay.add_argument("trace", type=str, help="path to a .npz trace")
    _add_config_arguments(replay)
    replay.add_argument(
        "--sparing",
        choices=("none", "pcd", "ps", "ps-worst", "max-we"),
        default="max-we",
    )
    _add_engine_argument(replay)
    replay.add_argument("--p", type=fraction_arg, default=0.1, help="spare fraction")
    replay.add_argument(
        "--swr", type=fraction_arg, default=0.9, help="SWR share of spares"
    )
    replay.set_defaults(handler=_cmd_replay_trace)

    report = subparsers.add_parser(
        "report", help="run the full evaluation and emit a Markdown report"
    )
    _add_config_arguments(report)
    report.add_argument(
        "--output", type=str, default=None, help="write the report to this path"
    )
    report.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Exit codes: 0 on success, 1 on failed tasks or bad inputs, 130 on
    interruption (the conventional 128 + SIGINT).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    previous_fault_spec = os.environ.get(FAULT_SPEC_ENV)
    try:
        return args.handler(args)
    except InvariantViolation as violation:
        print(f"error: {violation}", file=sys.stderr)
        if violation.bundle_path:
            print(f"crash-dump bundle: {violation.bundle_path}", file=sys.stderr)
        return 1
    except SimulationFailure as failure:
        print(f"error: {failure}", file=sys.stderr)
        for record in failure.failures:
            print(f"  - {record}", file=sys.stderr)
        return 1
    except RunInterrupted as interrupt:
        done = sum(1 for result in interrupt.results if result is not None)
        print(
            f"\ninterrupted: {done}/{len(interrupt.results)} tasks finished",
            file=sys.stderr,
        )
        if getattr(args, "checkpoint", None) or getattr(args, "resume", False):
            print(
                "finished work is checkpointed; re-run the same command "
                "with --resume (or the same --checkpoint) to continue",
                file=sys.stderr,
            )
        else:
            print(
                "hint: add --resume so an interrupted run can pick up "
                "where it left off",
                file=sys.stderr,
            )
        return 130
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130
    finally:
        if getattr(args, "inject_faults", None):
            if previous_fault_spec is None:
                os.environ.pop(FAULT_SPEC_ENV, None)
            else:
                os.environ[FAULT_SPEC_ENV] = previous_fault_spec


if __name__ == "__main__":
    sys.exit(main())
