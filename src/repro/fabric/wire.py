"""Fabric wire protocol: length-prefixed pickle frames over TCP.

Messages are plain dicts with a ``"type"`` key, pickled and prefixed
with a 4-byte big-endian length.  The framing is deliberately dumb --
the robustness story lives one level up: every exchange is a
request/reply pair initiated by the worker, so the worker-side
:class:`Channel` can emulate a lossy network *deterministically* (via
the shared :mod:`repro.sim.faults` roll machinery) without the
coordinator needing any fault awareness:

* **drop** -- the request is simply not sent; the channel backs off and
  retransmits under a fresh sequence number (at-least-once delivery).
* **duplicate** -- the request is sent twice; the coordinator answers
  every frame it receives, and the channel reads and discards the extra
  reply.  Duplicated commits are how the coordinator's idempotent
  first-commit-wins path gets exercised.
* **delay** -- the send stalls for ``delay_seconds`` first.

Faults roll per ``(channel name, send sequence)`` so two workers see
independent, reproducible fault streams under one seed.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Optional, Tuple

from repro.sim.faults import active_injector

_HEADER = struct.Struct(">I")

#: Upper bound on one frame; a torn/corrupt header otherwise risks a
#: multi-gigabyte allocation before the pickle even loads.
MAX_FRAME_BYTES: int = 256 * 1024 * 1024

#: Back-off before retransmitting a dropped request.
RETRANSMIT_DELAY: float = 0.02


class ChannelClosed(ConnectionError):
    """The peer closed the connection (coordinator shutdown, worker death)."""


class FrameError(ConnectionError):
    """A frame was torn mid-transfer or exceeded :data:`MAX_FRAME_BYTES`."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Pickle ``message`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte wire limit"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF before a new frame starts."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"inbound frame claims {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte wire limit"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed mid-frame")
    return pickle.loads(payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF at a frame boundary."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if chunks:
                raise FrameError("connection closed mid-frame")
            return None
        chunks.extend(chunk)
    return bytes(chunks)


class Channel:
    """Worker-side request/reply channel with deterministic network faults.

    One persistent TCP connection to the coordinator.  :meth:`request`
    is the only entry point: it applies any injected drop / duplicate /
    delay faults, transmits, and blocks for the coordinator's reply.
    A dropped request is retransmitted after :data:`RETRANSMIT_DELAY`
    under the next sequence number, so delivery is at-least-once; the
    coordinator's commit path is idempotent, which upgrades the pair to
    effectively-once.
    """

    def __init__(
        self, address: Tuple[str, int], name: str, timeout: Optional[float] = None
    ) -> None:
        self._address = address
        self._name = name
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._seq = 0

    @property
    def name(self) -> str:
        """Channel name, the fault-roll discriminator for this worker."""
        return self._name

    def _ensure(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self._address, timeout=self._timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self._sock

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def request(self, message: dict) -> dict:
        """Send ``message`` (fault-perturbed) and return the reply.

        Raises :class:`ChannelClosed` if the coordinator hangs up --
        the worker's signal to exit.
        """
        while True:
            seq = self._seq
            self._seq += 1
            injector = active_injector()
            duplicate = False
            if injector is not None:
                if injector.message_fault("delay", self._name, seq):
                    time.sleep(injector.spec.delay_seconds)
                if injector.message_fault("drop", self._name, seq):
                    # The request never hits the wire; back off and
                    # retransmit under the next sequence number.
                    time.sleep(RETRANSMIT_DELAY)
                    continue
                duplicate = injector.message_fault("duplicate", self._name, seq)
            sock = self._ensure()
            try:
                send_frame(sock, message)
                if duplicate:
                    send_frame(sock, message)
                reply = recv_frame(sock)
                if reply is None:
                    raise ChannelClosed("coordinator closed the channel")
                if duplicate:
                    # The coordinator answered the copy too; discard so
                    # the stream stays request/reply aligned.
                    extra = recv_frame(sock)
                    if extra is None:
                        raise ChannelClosed("coordinator closed the channel")
                return reply
            except ChannelClosed:
                self.close()
                raise
            except (OSError, FrameError) as error:
                self.close()
                raise ChannelClosed(str(error)) from error


def one_shot_request(
    address: Tuple[str, int], message: dict, timeout: float = 5.0
) -> Optional[dict]:
    """Open a connection, exchange one request/reply, close.

    Used for heartbeats: they run on a side thread while the worker's
    main thread (and its persistent :class:`Channel`) is busy executing,
    and a per-beat connection keeps the two streams from interleaving.
    Heartbeats bypass the injected message faults -- partitions, the
    fault kind that targets liveness, suppress them wholesale at the
    worker loop instead.  Returns ``None`` if the coordinator is gone.
    """
    try:
        with socket.create_connection(address, timeout=timeout) as sock:
            send_frame(sock, message)
            return recv_frame(sock)
    except (OSError, FrameError):
        return None
