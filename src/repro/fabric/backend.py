"""FabricBackend: the multi-host executor behind ``--backend fabric``.

Spawns a localhost :class:`~repro.fabric.coordinator.Coordinator` plus
``workers`` worker processes, then drives the run from the calling
thread: draining completions/verdicts (so cache writes, checkpoint
appends, and retry arbitration happen exactly where the pool backend
does them), expiring leases, and watching worker liveness.

Degradation ladder -- the run *completes* at every rung, it just gets
slower and says so:

1. a worker dies ⇒ its in-flight lease is charged as a crash (or
   absorbed by a stolen sibling), the remaining workers carry on, and
   ``fabric.workers_lost`` / ``summary.degraded`` record the loss;
2. every worker dies ⇒ outstanding leases are force-expired and the
   leftovers run serially in-process (``fabric.local_fallback_tasks``),
   exactly like the pool's serial path;
3. the *coordinator* dies (``coordinator-crash`` fault) ⇒ the
   supervisor rebuilds it from its fsynced lease ledger on the same
   port; reconnecting workers keep the leases they hold and the run
   continues (``fabric.coordinator_restarts``);
4. SIGINT/SIGTERM ⇒ same clean interrupt surface as the pool: workers
   torn down, in-flight and queued tasks recorded as ``interrupted``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import tempfile
from pathlib import Path
from time import monotonic, sleep
from typing import Dict, List, Optional, Sequence

from repro.fabric.coordinator import Coordinator, CoordinatorLedger
from repro.fabric.worker import worker_main
from repro.obs.metrics import MetricsRegistry
from repro.sim.faults import active_injector
from repro.sim.executor import (
    CompletionCallback,
    ExecutionSummary,
    ExecutorBackend,
    SupervisedTask,
    handle_attempt_failure,
    mark_skipped,
)
from repro.sim.resilience import Checkpoint, FailureRecord, ResiliencePolicy
from repro.util.events import EventLog

#: Default lease TTL (seconds).  Heartbeats renew at a third of this.
DEFAULT_LEASE_TTL: float = 10.0

#: Supervisor poll granularity while waiting on the coordinator outbox.
POLL_SECONDS: float = 0.05

#: Grace period for worker processes to exit after a shutdown request.
SHUTDOWN_GRACE_SECONDS: float = 5.0

#: Upper bound on worker respawns, as a multiple of the worker count.
RESPAWN_CAP_FACTOR: int = 8


class FabricBackend(ExecutorBackend):
    """Socket-fabric execution: coordinator + leased worker processes.

    Parameters
    ----------
    workers:
        Worker-process count; ``None`` (default) uses the runner's
        ``jobs`` value.
    lease_ttl:
        Seconds a lease survives without a heartbeat before the
        coordinator expires it and requeues the task innocently.
    host:
        Address the coordinator binds; loopback by default.  Binding a
        routable address is what turns this into a *multi*-host fabric
        (remote workers run :func:`repro.fabric.worker.worker_main`
        against the advertised endpoint).
    respawn:
        Replace locally-spawned workers that die (the pool-parity
        behaviour, default).  ``False`` models remote hosts the
        coordinator cannot resurrect: losses are permanent and the run
        degrades onto the survivors.  Respawns are capped at
        ``RESPAWN_CAP_FACTOR × workers`` so a pathological crash storm
        still converges to the degraded path instead of thrashing.
    """

    name = "fabric"

    def __init__(
        self,
        workers: Optional[int] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        host: str = "127.0.0.1",
        respawn: bool = True,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        self._workers = workers
        self._lease_ttl = float(lease_ttl)
        self._host = host
        self._respawn = respawn

    @property
    def lease_ttl(self) -> float:
        return self._lease_ttl

    def execute(
        self,
        pending: Sequence[SupervisedTask],
        *,
        jobs: int,
        policy: ResiliencePolicy,
        events: EventLog,
        on_complete: CompletionCallback,
        metrics: MetricsRegistry,
        checkpoint: "Optional[Checkpoint]" = None,
    ) -> ExecutionSummary:
        # Lazy import: runner imports executor, fabric imports runner.
        from repro.sim.runner import ProcessPoolBackend, _fault_spec_text, _picklable

        if not pending:
            return ExecutionSummary()
        if not _picklable([state.task for state in pending]):
            # Unpicklable tasks cannot cross the wire; run them the way
            # the pool backend would.
            events.record("fabric-serial-fallback", -1, reason="unpicklable")
            summary = ProcessPoolBackend().run_serial(
                pending, policy, events, on_complete, metrics
            )
            summary.jobs_used = 1
            return summary

        workers = self._workers if self._workers is not None else jobs
        workers = max(1, min(workers, max(len(pending), 1)))
        summary = ExecutionSummary(jobs_used=workers)
        outstanding: Dict[int, SupervisedTask] = {
            state.index: state for state in pending
        }
        #: Terminally-failed states a late commit may still heal.
        healable: Dict[int, SupervisedTask] = {}

        # Control-plane ledger: fresh per execute (leases reference
        # worker processes spawned below, so pre-run state is never
        # meaningful), durable *across in-run coordinator restarts*.
        scratch_dir: Optional[tempfile.TemporaryDirectory] = None
        if checkpoint is not None:
            ledger_path = checkpoint.path.with_name(
                checkpoint.path.name + ".coordinator"
            )
        else:
            scratch_dir = tempfile.TemporaryDirectory(prefix="repro-fabric-")
            ledger_path = Path(scratch_dir.name) / "coordinator.jsonl"
        ledger = CoordinatorLedger(ledger_path, resume=False)

        coordinator = Coordinator(
            pending,
            lease_ttl=self._lease_ttl,
            metrics=metrics,
            events=events,
            host=self._host,
            ledger=ledger,
        )
        host, port = coordinator.address
        metrics.gauge("fabric.workers", workers)
        fault_spec = _fault_spec_text()
        context = multiprocessing.get_context()
        next_worker = 0

        def spawn_worker() -> multiprocessing.Process:
            nonlocal next_worker
            worker_id = f"w{next_worker}"
            next_worker += 1
            shard = (
                str(checkpoint.shard_path(worker_id))
                if checkpoint is not None
                else None
            )
            # Fork-context children inherit the coordinator's listener
            # fd; each worker must close its copy at startup or the port
            # stays in LISTEN after a coordinator crash and the
            # replacement cannot rebind.  Under spawn the child's fd
            # table is fresh and the number would hit an unrelated fd.
            inherited_fds: "tuple[int, ...]" = ()
            if context.get_start_method() == "fork":
                inherited_fds = (coordinator.listener_fileno(),)
            process = context.Process(
                target=worker_main,
                name=f"fabric-{worker_id}",
                args=(
                    host,
                    port,
                    worker_id,
                    fault_spec,
                    policy.timeout,
                    self._lease_ttl,
                    shard,
                    inherited_fds,
                ),
                daemon=True,
            )
            process.start()
            return process

        processes: List[multiprocessing.Process] = [
            spawn_worker() for _ in range(workers)
        ]
        lost: set = set()
        respawns = 0
        respawn_cap = RESPAWN_CAP_FACTOR * workers
        injector = active_injector()
        crash_pending = False

        def complete(state: SupervisedTask, report, granted, late: bool) -> None:
            nonlocal crash_pending
            if state.index not in outstanding and state.index not in healable:
                return
            if late:
                events.record(
                    "late-commit", state.index, key=state.key[:12]
                )
            if state.index in healable:
                # The commit overturns an earlier terminal failure
                # (expired lease whose partition healed, worker verdicts
                # that all missed): the result is real, keep it.
                healable.pop(state.index)
                summary.failures.pop(state.index, None)
            state.elapsed += report.elapsed
            queue_wait = (
                max(report.started - granted, 0.0) if granted is not None else 0.0
            )
            harvest_latency = max(monotonic() - report.ended, 0.0)
            state.queue_seconds += queue_wait
            state.harvest_seconds += harvest_latency
            metrics.observe_seconds("runner/queue_wait", queue_wait)
            metrics.observe_seconds("runner/worker_run", report.elapsed)
            metrics.observe_seconds("runner/harvest_latency", harvest_latency)
            if report.metrics is not None:
                metrics.merge_snapshot(report.metrics)
            on_complete(state, report.result, report.elapsed)
            outstanding.pop(state.index, None)
            # Each task completes at most once, so a hit here schedules
            # exactly one crash -- after the rebuild this key is done and
            # never rolls again, guaranteeing convergence.
            if injector is not None and injector.coordinator_crash_now(state.key):
                crash_pending = True

        def charge(state: SupervisedTask, error: BaseException, kind: str) -> None:
            if state.index not in outstanding:
                return
            with coordinator.lock:
                handle_attempt_failure(
                    policy, state, error, kind, coordinator.ready, summary, events
                )
            if state.index in summary.failures:
                outstanding.pop(state.index, None)
                healable[state.index] = state

        def drain(block: bool) -> bool:
            """Process one outbox batch; returns whether anything arrived."""
            drained = False
            while True:
                try:
                    item = coordinator.outbox.get(
                        timeout=POLL_SECONDS if (block and not drained) else 0.0
                    )
                except queue_module.Empty:
                    return drained
                drained = True
                if item[0] == "complete":
                    _, state, report, granted, late = item
                    complete(state, report, granted, late)
                else:
                    _, state, error, kind = item
                    charge(state, error, kind)

        def restart_coordinator() -> None:
            """Crash the coordinator and rebuild it from the ledger.

            The old incarnation's outbox is fully absorbed *before* the
            rebuild -- it lives in this (surviving) process, the way a
            real restart would first replay the journal's committed
            tail -- so no completion that was already committed can be
            lost or re-dispatched.
            """
            nonlocal coordinator, crash_pending
            crash_pending = False
            crash_host, crash_port = coordinator.crash()
            drain(block=False)
            metrics.inc("fabric.coordinator_restarts")
            events.record(
                "coordinator-restarted", -1, port=crash_port,
                outstanding=len(outstanding),
            )
            survivors = [state for state in pending if state.index in outstanding]
            # The replacement must rebind the *same* port -- that is the
            # endpoint every backing-off worker retries.  SO_REUSEADDR
            # makes this immediate on POSIX; tolerate a briefly lingering
            # socket anyway.
            last_error: Optional[OSError] = None
            for _ in range(40):
                try:
                    coordinator = Coordinator(
                        survivors,
                        lease_ttl=self._lease_ttl,
                        metrics=metrics,
                        events=events,
                        host=crash_host,
                        port=crash_port,
                        parked=list(healable.values()),
                        ledger=ledger,
                    )
                    return
                except OSError as error:
                    last_error = error
                    sleep(0.05)
            raise last_error  # type: ignore[misc]

        try:
            while outstanding:
                drain(block=True)
                if crash_pending:
                    restart_coordinator()
                coordinator.expire_leases()
                for slot, process in enumerate(processes):
                    if process.is_alive() or process.pid in lost:
                        continue
                    lost.add(process.pid)
                    metrics.inc("fabric.workers_lost")
                    events.record(
                        "worker-lost", -1, worker=process.name,
                        exitcode=process.exitcode,
                    )
                    if self._respawn and outstanding and respawns < respawn_cap:
                        respawns += 1
                        summary.pool_respawns += 1
                        metrics.inc("fabric.workers_respawned")
                        processes[slot] = spawn_worker()
                        events.record(
                            "worker-respawned", -1,
                            worker=processes[slot].name,
                        )
                    else:
                        # A lost worker with no replacement: the run
                        # continues on the survivors, degraded.
                        summary.degraded = True
                if policy.fail_fast and summary.failures:
                    with coordinator.lock:
                        skipped = [
                            state
                            for state in coordinator.ready
                            if state.index in outstanding
                        ]
                        coordinator.ready.clear()
                    for state in skipped:
                        summary.failures[state.index] = FailureRecord(
                            index=state.index,
                            key=state.key,
                            label=state.label,
                            kind="skipped",
                            attempts=state.attempts,
                        )
                        outstanding.pop(state.index, None)
                if outstanding and all(p.pid in lost for p in processes):
                    # Every worker died: absorb the straggler verdicts,
                    # force-expire surviving leases, and finish the
                    # leftovers serially in-process.
                    deadline = monotonic() + 1.0
                    while coordinator.active_leases() and monotonic() < deadline:
                        drain(block=True)
                    drain(block=False)
                    coordinator.expire_all_leases()
                    drain(block=False)
                    remaining = [
                        state
                        for state in coordinator.take_ready()
                        if state.index in outstanding
                    ]
                    if remaining:
                        metrics.inc("fabric.local_fallback_tasks", len(remaining))
                        events.record(
                            "fabric-local-fallback", -1, tasks=len(remaining)
                        )
                        from repro.sim.runner import ProcessPoolBackend

                        fallback = ProcessPoolBackend().run_serial(
                            remaining, policy, events, on_complete, metrics
                        )
                        summary.failures.update(fallback.failures)
                        summary.retries += fallback.retries
                        summary.interrupted |= fallback.interrupted
                        for state in remaining:
                            outstanding.pop(state.index, None)
                    # Whatever still lingers (completed via late commits
                    # already, or unreachable) drains on the next spin.
                    drain(block=False)
                    if outstanding and not coordinator.active_leases():
                        # Nothing can ever complete these now.
                        for index, state in list(outstanding.items()):
                            summary.failures[index] = FailureRecord(
                                index=index,
                                key=state.key,
                                label=state.label,
                                kind="crash",
                                attempts=state.attempts,
                            )
                            outstanding.pop(index, None)
            coordinator.request_shutdown()
        except KeyboardInterrupt:
            summary.interrupted = True
            with coordinator.lock:
                coordinator.ready.clear()
            for state in outstanding.values():
                summary.failures[state.index] = FailureRecord(
                    index=state.index,
                    key=state.key,
                    label=state.label,
                    kind="interrupted",
                    attempts=state.attempts,
                )
            outstanding.clear()
        finally:
            coordinator.request_shutdown()
            for process in processes:
                process.join(timeout=SHUTDOWN_GRACE_SECONDS)
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            # Recovery invariant surfaced in manifests: a converged run
            # ends with zero outstanding (orphaned) leases.
            metrics.gauge("fabric.active_leases", coordinator.active_leases())
            coordinator.close()
            # The control-plane ledger is scratch outside this execute:
            # leases name worker processes that no longer exist.
            try:
                ledger_path.unlink()
            except OSError:
                pass
            if scratch_dir is not None:
                scratch_dir.cleanup()
        return summary
