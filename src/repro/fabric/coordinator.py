"""The fabric coordinator: lease-guarded work-stealing task server.

Runs inside the supervisor process.  An accept thread hands each worker
connection to a handler thread; every mutation of shared state happens
under one lock, and everything that must execute on the *calling* thread
(cache writes, primary-checkpoint appends, retry arbitration) is pushed
through ``outbox`` for :class:`~repro.fabric.backend.FabricBackend` to
drain.

Robustness model
----------------
* **Leases.**  A fetched task is leased to the worker; the lease is
  renewed by heartbeats and expires after ``lease_ttl`` without one.
  Expiry of a task's *last* lease is an innocent requeue: the attempt
  charged at grant time is refunded, so the re-dispatch replays the same
  attempt number and the same injected-fault rolls -- the distributed
  analogue of the pool's torn-down-pool requeue.
* **Stealing.**  A worker that finds the ready queue empty may be
  granted a *duplicate* lease on the oldest outstanding lease past half
  its TTL (at most two leases per task), under the *same* attempt
  number.  Whichever copy commits first wins; the loser's commit is a
  counted duplicate.
* **Idempotent commits.**  Commits are keyed on the task's SHA-256
  content key; the first wins, every later one (steal loser, duplicated
  frame, partition-healed straggler) is acknowledged and dropped.
  At-least-once message delivery therefore yields effectively-once
  completion.  A commit landing *after* the task was terminally failed
  or requeued still counts -- it heals the failure (``late_commits``).
* **Worker death.**  EOF on a connection holding an active lease is the
  crash verdict (charged, retryable), mirroring the pool's
  ``BrokenProcessPool`` path.  If a sibling lease is still running the
  loss is absorbed silently -- the survivor decides the task's fate.
* **Coordinator death.**  Every grant, commit, and lease release is
  journaled to an append-only fsynced :class:`CoordinatorLedger` (same
  torn-tail-tolerant idiom as the result :class:`~repro.sim.resilience.
  Checkpoint`).  A restarted coordinator replays the ledger to rebuild
  the done-set and every outstanding lease under its original id, so
  workers that reconnect keep heartbeating and committing against the
  leases they already hold; anything the ledger cannot prove was leased
  goes back on the ready queue.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from collections import deque

from repro.fabric.wire import FrameError, recv_frame, send_frame
from repro.obs.metrics import MetricsRegistry
from repro.sim.executor import SupervisedTask
from repro.util.events import EventLog


class LeaseExpired(RuntimeError):
    """A worker lease lapsed without heartbeat (partition / stall)."""

    #: Honored by :func:`repro.sim.resilience.is_retryable`.
    retryable = True


class WorkerCrash(RuntimeError):
    """A worker connection died while holding an active lease."""

    retryable = True


class RemoteTaskError(RuntimeError):
    """A task attempt failed on a remote worker.

    Carries the worker-side exception's type name and retry verdict so
    the supervisor's shared retry arbiter treats remote failures exactly
    like local ones without unpickling arbitrary exception objects.
    """

    def __init__(self, error_type: str, message: str, retryable: bool) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.retryable = bool(retryable)


@dataclass
class Lease:
    """One outstanding grant of a task to a worker."""

    lease_id: int
    state: SupervisedTask
    worker: str
    attempt: int
    granted: float
    last_beat: float
    stolen: bool = False


@dataclass
class _TaskSlot:
    """Coordinator-side bookkeeping for one supervised task."""

    state: SupervisedTask
    leases: Set[int] = field(default_factory=set)
    done: bool = False


#: Schema header value of coordinator ledger files.
COORDINATOR_LEDGER_SCHEMA: int = 1


@dataclass
class LedgerSnapshot:
    """Control-plane state recovered from a coordinator ledger replay."""

    done_keys: Set[str] = field(default_factory=set)
    #: ``lease_id -> {"key", "worker", "attempt", "stolen"}``
    leases: Dict[int, dict] = field(default_factory=dict)
    next_lease: int = 0


class CoordinatorLedger:
    """Append-only fsynced journal of coordinator control-plane events.

    One JSON line per event -- ``grant`` (lease id, task key, worker,
    attempt, stolen), ``commit`` (task key), ``release`` (lease id) --
    after a schema header line, flushed and fsynced per append exactly
    like the result :class:`~repro.sim.resilience.Checkpoint`.  Replay
    stops-and-skips on torn or corrupt lines, so the ledger survives a
    kill at any instant with at most the in-flight event lost.

    The ledger holds *control-plane* state only: which tasks are proven
    done and which leases are outstanding.  Result durability is the
    workers' shard ledgers' job.  Appends are best-effort -- an
    ``OSError`` (disk full, dead mount) disables the ledger rather than
    failing the run, degrading a future restart to "requeue everything"
    (still convergent, since commits are idempotent; just more
    redundant re-execution).
    """

    def __init__(self, path: "str | Path", *, resume: bool = True) -> None:
        self._path = Path(path)
        self._header_written = False
        self._disabled = False
        if not resume and self._path.exists():
            try:
                self._path.unlink()
            except OSError:
                self._disabled = True

    @property
    def path(self) -> Path:
        return self._path

    @property
    def disabled(self) -> bool:
        """Whether a write error degraded this ledger to a no-op."""
        return self._disabled

    def append(self, event: dict) -> None:
        """Journal one event (flush + fsync; best effort)."""
        if self._disabled:
            return
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with open(self._path, "a", encoding="utf-8") as handle:
                if not self._header_written and handle.tell() == 0:
                    handle.write(
                        json.dumps({"coordinator_schema": COORDINATOR_LEDGER_SCHEMA})
                    )
                    handle.write("\n")
                self._header_written = True
                handle.write(json.dumps(event))
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            self._disabled = True

    def replay(self) -> LedgerSnapshot:
        """Rebuild the done-set and outstanding leases from the journal.

        A missing file, foreign header, or torn tail degrades to an
        empty (or truncated) snapshot -- never an exception.
        """
        snapshot = LedgerSnapshot()
        if not self._path.exists():
            return snapshot
        try:
            lines = self._path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return snapshot
        if not lines:
            return snapshot
        try:
            header = json.loads(lines[0])
        except ValueError:
            return snapshot
        if not isinstance(header, dict) or (
            header.get("coordinator_schema") != COORDINATOR_LEDGER_SCHEMA
        ):
            return snapshot
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
                kind = event["event"]
            except (ValueError, KeyError, TypeError):
                continue
            if kind == "grant":
                try:
                    lease_id = int(event["lease"])
                    snapshot.leases[lease_id] = {
                        "key": str(event["key"]),
                        "worker": str(event.get("worker", "?")),
                        "attempt": int(event.get("attempt", 0)),
                        "stolen": bool(event.get("stolen", False)),
                    }
                except (KeyError, TypeError, ValueError):
                    continue
                snapshot.next_lease = max(snapshot.next_lease, lease_id + 1)
            elif kind == "commit":
                key = event.get("key")
                if isinstance(key, str):
                    snapshot.done_keys.add(key)
            elif kind == "release":
                try:
                    snapshot.leases.pop(int(event["lease"]), None)
                except (KeyError, TypeError, ValueError):
                    continue
        return snapshot


class Coordinator:
    """Socket-served task queue with leases, stealing, idempotent commits.

    ``outbox`` carries ``("complete", state, report, granted, late)``
    and ``("verdict", state, error, kind)`` tuples to the backend's
    supervisor loop; nothing user-visible runs on coordinator threads.
    """

    def __init__(
        self,
        pending: Sequence[SupervisedTask],
        *,
        lease_ttl: float,
        metrics: MetricsRegistry,
        events: EventLog,
        host: str = "127.0.0.1",
        port: int = 0,
        parked: Sequence[SupervisedTask] = (),
        ledger: Optional[CoordinatorLedger] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        self._lease_ttl = float(lease_ttl)
        self._metrics = metrics
        self._events = events
        self.lock = threading.Lock()
        self.ready: Deque[SupervisedTask] = deque(pending)
        self._slots: Dict[str, _TaskSlot] = {
            state.key: _TaskSlot(state=state) for state in pending
        }
        # Parked tasks (e.g. terminally failed, awaiting a possible late
        # commit to heal them) get a slot -- so their commits still
        # resolve -- but never enter the ready queue.
        for state in parked:
            self._slots.setdefault(state.key, _TaskSlot(state=state))
        self._leases: Dict[int, Lease] = {}
        self._next_lease = 0
        self._shutdown = False
        self._ledger = ledger
        self.outbox: "queue.Queue[tuple]" = queue.Queue()
        if ledger is not None:
            self._restore(ledger.replay())

        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.settimeout(0.2)
        self._closing = threading.Event()
        self._crashed = False
        self._conns: Set[socket.socket] = set()
        self._threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        self._accept_thread.start()

    def _restore(self, snapshot: LedgerSnapshot) -> None:
        """Rebuild outstanding leases from a ledger replay (restart path).

        Only leases over tasks this incarnation actually manages (and
        that the ledger does not prove done) are restored; each keeps
        its original lease id -- the id the worker holding it will keep
        heartbeating and committing with -- under a fresh
        ``last_beat``, so a lease whose worker really died simply
        expires one TTL later and requeues innocently.
        """
        now = monotonic()
        restored = 0
        for lease_id, info in sorted(snapshot.leases.items()):
            slot = self._slots.get(info["key"])
            if slot is None or slot.done or info["key"] in snapshot.done_keys:
                continue
            lease = Lease(
                lease_id=lease_id,
                state=slot.state,
                worker=info["worker"],
                attempt=info["attempt"],
                granted=now,
                last_beat=now,
                stolen=info["stolen"],
            )
            self._leases[lease_id] = lease
            slot.leases.add(lease_id)
            restored += 1
            try:
                self.ready.remove(slot.state)
            except ValueError:
                pass
        self._next_lease = max(self._next_lease, snapshot.next_lease)
        if restored:
            self._metrics.inc("fabric.leases_restored", restored)

    # ------------------------------------------------------------------
    # Supervisor-facing surface
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` workers should connect to."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def lease_ttl(self) -> float:
        return self._lease_ttl

    def listener_fileno(self) -> int:
        """Raw fd of the listening socket.

        Workers forked from the supervisor inherit a copy of this fd and
        must close it immediately: a forked copy left open keeps the
        port in LISTEN after :meth:`crash` closes the supervisor's copy,
        which both blocks the replacement coordinator's rebind
        (``EADDRINUSE`` despite ``SO_REUSEADDR``) and silently swallows
        worker reconnects into a queue nobody will ever accept from.
        """
        return self._listener.fileno()

    def request_shutdown(self) -> None:
        """Make every subsequent fetch answer ``shutdown``."""
        with self.lock:
            self._shutdown = True

    def close(self) -> None:
        """Stop accepting, close the listener, and join handler threads."""
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def crash(self) -> Tuple[str, int]:
        """Die abruptly, as a killed coordinator process would.

        Every worker connection is torn down mid-stream (workers see
        :class:`~repro.fabric.wire.ChannelClosed` and enter their
        reconnect backoff), *without* charging the usual EOF-holding-a-
        lease crash verdicts -- the workers are fine, the coordinator is
        the casualty, and the replacement rebuilt from the ledger will
        honor the leases they still hold.  Returns the ``(host, port)``
        the replacement must rebind (``create_server`` sets
        ``SO_REUSEADDR``, so the port is immediately reusable).

        The in-memory ``outbox`` survives -- it lives in the supervisor
        process, which drains it before rebuilding, exactly as a real
        restart would first absorb the journal's committed tail.
        """
        host, port = self.address
        self._crashed = True
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in list(self._conns):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)
        return host, port

    def active_leases(self) -> int:
        """Leases outstanding over *undecided* tasks.

        A steal loser's lease over an already-committed task is excluded:
        it is administrative residue awaiting its duplicate commit (or
        TTL expiry), not a task anyone is still waiting on.  This is the
        "zero orphaned leases after recovery" number the backend gauges.
        """
        with self.lock:
            undecided = 0
            for lease in self._leases.values():
                slot = self._slots.get(lease.state.key)
                if slot is None or not slot.done:
                    undecided += 1
            return undecided

    def take_ready(self) -> List[SupervisedTask]:
        """Drain the ready queue (degraded local-fallback path)."""
        with self.lock:
            drained = [
                state for state in self.ready if not self._slots[state.key].done
            ]
            self.ready.clear()
            return drained

    def expire_leases(self, now: Optional[float] = None) -> int:
        """Expire leases past the TTL; returns how many lapsed.

        The last lease of a task requeues it innocently (attempt
        refunded); a lease with a surviving sibling is dropped silently.
        """
        if now is None:
            now = monotonic()
        expired = 0
        with self.lock:
            for lease_id, lease in list(self._leases.items()):
                if now - lease.last_beat <= self._lease_ttl:
                    continue
                expired += 1
                self._metrics.inc("fabric.leases_expired")
                self._events.record(
                    "lease-expired",
                    lease.state.index,
                    key=lease.state.key[:12],
                    worker=lease.worker,
                )
                self._drop_lease(lease_id, requeue=True)
        return expired

    def expire_all_leases(self) -> int:
        """Force-expire every lease (all workers known dead)."""
        expired = 0
        with self.lock:
            for lease_id in list(self._leases):
                expired += 1
                self._metrics.inc("fabric.leases_expired")
                self._drop_lease(lease_id, requeue=True)
        return expired

    # ------------------------------------------------------------------
    # Shared-state helpers (call with ``self.lock`` held)
    # ------------------------------------------------------------------

    def _drop_lease(self, lease_id: int, *, requeue: bool) -> None:
        """Remove a lease; requeue its task if it was the last copy."""
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return
        if self._ledger is not None:
            self._ledger.append({"event": "release", "lease": lease_id})
        slot = self._slots[lease.state.key]
        slot.leases.discard(lease_id)
        if slot.done or slot.leases:
            return
        if requeue:
            # Innocent requeue: refund the attempt charged at grant so
            # the re-dispatch replays the same attempt number (and the
            # same deterministic fault rolls).
            lease.state.attempts = lease.attempt
            self.ready.append(lease.state)
            self._metrics.inc("fabric.requeues")
            self._events.record(
                "task-requeued", lease.state.index, key=lease.state.key[:12]
            )

    def _grant(self, state: SupervisedTask, worker: str, *, attempt: int,
               stolen: bool) -> dict:
        now = monotonic()
        lease_id = self._next_lease
        self._next_lease += 1
        lease = Lease(
            lease_id=lease_id,
            state=state,
            worker=worker,
            attempt=attempt,
            granted=now,
            last_beat=now,
            stolen=stolen,
        )
        self._leases[lease_id] = lease
        self._slots[state.key].leases.add(lease_id)
        if self._ledger is not None:
            self._ledger.append(
                {
                    "event": "grant",
                    "lease": lease_id,
                    "key": state.key,
                    "worker": worker,
                    "attempt": attempt,
                    "stolen": stolen,
                }
            )
        self._metrics.inc("fabric.leases_granted")
        if stolen:
            self._metrics.inc("fabric.steals")
            self._events.record(
                "task-stolen", state.index, key=state.key[:12], worker=worker
            )
        return {
            "type": "task",
            "lease": lease_id,
            "key": state.key,
            "task": state.task,
            "attempt": attempt,
            "label": state.label,
        }

    # ------------------------------------------------------------------
    # Connection handling (coordinator threads)
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve, args=(conn,), name="fabric-conn", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        """Answer one worker connection until EOF.

        Tracks the lease currently held *through this connection* so a
        dead worker (EOF mid-task) is charged as a crash -- unless a
        sibling (stolen) lease survives to decide the task instead.
        """
        current_lease: Optional[int] = None
        try:
            while True:
                try:
                    message = recv_frame(conn)
                except (FrameError, OSError):
                    message = None
                if message is None:
                    break
                reply = self._dispatch(message)
                if message.get("type") == "fetch":
                    current_lease = (
                        reply["lease"] if reply.get("type") == "task" else None
                    )
                elif message.get("type") in ("commit", "fail"):
                    if message.get("lease") == current_lease:
                        current_lease = None
                try:
                    send_frame(conn, reply)
                except OSError:
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass
            self._conns.discard(conn)
            # A crashed coordinator charges nobody: the worker behind
            # this EOF is alive, and its (journaled) lease survives into
            # the rebuilt coordinator.
            if current_lease is not None and not self._crashed:
                self._on_connection_lost(current_lease)

    def _on_connection_lost(self, lease_id: int) -> None:
        with self.lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return
            slot = self._slots[lease.state.key]
            survivors = len(slot.leases) - 1
            self._drop_lease(lease_id, requeue=False)
            if slot.done or survivors > 0:
                return
            self._metrics.inc("fabric.worker_crashes")
        self.outbox.put(
            (
                "verdict",
                lease.state,
                WorkerCrash(
                    f"worker {lease.worker} died holding lease {lease_id} "
                    f"(task {lease.state.key[:12]}..., attempt {lease.attempt})"
                ),
                "crash",
            )
        )

    def _dispatch(self, message: dict) -> dict:
        kind = message.get("type")
        if kind == "fetch":
            return self._handle_fetch(message)
        if kind == "commit":
            return self._handle_commit(message)
        if kind == "fail":
            return self._handle_fail(message)
        if kind == "heartbeat":
            return self._handle_heartbeat(message)
        return {"type": "error", "error": f"unknown message type {kind!r}"}

    def _handle_fetch(self, message: dict) -> dict:
        worker = str(message.get("worker", "?"))
        now = monotonic()
        with self.lock:
            if self._shutdown:
                return {"type": "shutdown"}
            # Ready work first: skip states already committed via a late
            # or duplicate path, honor retry backoff stamps.
            for _ in range(len(self.ready)):
                state = self.ready.popleft()
                if self._slots[state.key].done:
                    continue
                if state.not_before > now:
                    self.ready.append(state)
                    continue
                attempt = state.attempts
                state.attempts += 1
                return self._grant(state, worker, attempt=attempt, stolen=False)
            # Nothing queued: steal the oldest lease past half its TTL
            # (same attempt number; at most two leases per task).
            candidate: Optional[Lease] = None
            for lease in self._leases.values():
                slot = self._slots[lease.state.key]
                if slot.done or len(slot.leases) >= 2:
                    continue
                if lease.worker == worker:
                    continue
                if now - lease.granted < self._lease_ttl / 2.0:
                    continue
                if candidate is None or lease.granted < candidate.granted:
                    candidate = lease
            if candidate is not None:
                return self._grant(
                    candidate.state,
                    worker,
                    attempt=candidate.attempt,
                    stolen=True,
                )
            return {"type": "wait"}

    def _handle_commit(self, message: dict) -> dict:
        key = message.get("key")
        lease_id = message.get("lease")
        report = message.get("report")
        with self.lock:
            slot = self._slots.get(key)
            if slot is None:
                return {"type": "ack", "accepted": False}
            if slot.done:
                # Steal loser, duplicated frame, or retransmitted commit:
                # the first commit already decided this task.
                self._metrics.inc("fabric.duplicate_commits")
                self._drop_lease(lease_id, requeue=False)
                return {"type": "ack", "accepted": False}
            slot.done = True
            # Journal the commit *before* the release _drop_lease writes,
            # so a crash between the two replays as done-with-orphaned-
            # lease (the restore path skips leases over done keys) rather
            # than as still-pending.
            if self._ledger is not None:
                self._ledger.append({"event": "commit", "key": key})
            lease = self._leases.get(lease_id)
            granted = lease.granted if lease is not None else None
            # A commit whose lease already expired (partition healed,
            # failure overturned) is late but binding.
            late = lease is None
            if late:
                self._metrics.inc("fabric.late_commits")
            self._drop_lease(lease_id, requeue=False)
            # Drop any requeued copy still sitting in the ready queue.
            try:
                self.ready.remove(slot.state)
            except ValueError:
                pass
        self.outbox.put(("complete", slot.state, report, granted, late))
        return {"type": "ack", "accepted": True}

    def _handle_fail(self, message: dict) -> dict:
        key = message.get("key")
        lease_id = message.get("lease")
        with self.lock:
            slot = self._slots.get(key)
            if slot is None:
                return {"type": "ack", "accepted": False}
            lease = self._leases.get(lease_id)
            survivors = len(slot.leases) - (1 if lease is not None else 0)
            self._drop_lease(lease_id, requeue=False)
            if slot.done or survivors > 0 or lease is None:
                # A sibling lease is still running (or already decided
                # the task): absorb this copy's failure silently.
                return {"type": "ack", "accepted": False}
        error = RemoteTaskError(
            str(message.get("error_type", "Exception")),
            str(message.get("error_text", "")),
            bool(message.get("retryable", True)),
        )
        self.outbox.put(("verdict", slot.state, error, message.get("kind", "exception")))
        return {"type": "ack", "accepted": True}

    def _handle_heartbeat(self, message: dict) -> dict:
        lease_id = message.get("lease")
        with self.lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return {"type": "ack", "valid": False}
            lease.last_beat = monotonic()
            return {"type": "ack", "valid": True}
