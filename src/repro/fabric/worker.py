"""The fabric worker loop: fetch, execute, journal to a shard, commit.

Each worker is a separate process running :func:`worker_main`.  It
shares the pool workers' execution entry point
(:func:`repro.sim.runner._execute_supervised`) and fault harness, so a
task attempt rolls exactly the same injected faults under either
backend -- the cornerstone of cross-backend bit-identical results.

Per-task flow::

    fetch ──► (partition? suppress heartbeats)
          ──► slow-worker stall
          ──► execute under the policy timeout (hang breaker)
          ──► append to the worker's own shard ledger   (durability)
          ──► (partition? sleep out the outage)
          ──► commit over the wire                      (delivery)

The shard ledger is written *before* the commit: if the commit frame is
lost or the coordinator dies, the result still survives on disk and the
next run's ``merge_shards`` resumes it.  The commit itself rides the
fault-perturbed :class:`~repro.fabric.wire.Channel`, so drops
retransmit and duplicates exercise the coordinator's idempotent path.

Crash faults hard-exit the process (``os._exit``), exactly like a pool
worker: the coordinator sees EOF on a live lease and charges the
attempt as a crash.

A dead coordinator socket is *not* fatal: every request retries through
capped, jittered exponential backoff (:func:`_request_with_backoff`), so
a worker rides out a coordinator crash-restart and then resumes against
the rebuilt endpoint -- committing under the same lease id the ledger
restored.  Only after ``RECONNECT_MAX_ATTEMPTS`` consecutive failures
does the worker conclude the coordinator is gone for good and exit
cleanly.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple

from repro.fabric.wire import Channel, ChannelClosed, one_shot_request
from repro.sim.faults import active_injector, mark_worker_process
from repro.sim.resilience import (
    Checkpoint,
    CheckpointWriteError,
    TaskTimeout,
    is_retryable,
    time_limit,
)

#: Poll interval while the coordinator has nothing ready to hand out.
IDLE_POLL_SECONDS: float = 0.05

#: First reconnect delay; doubles per consecutive failure.
RECONNECT_BASE_SECONDS: float = 0.05

#: Ceiling on a single reconnect delay.
RECONNECT_CAP_SECONDS: float = 2.0

#: Consecutive connection failures before a worker gives up cleanly.
RECONNECT_MAX_ATTEMPTS: int = 12


def _reconnect_delay(worker_id: str, attempt: int) -> float:
    """Backoff before reconnect ``attempt``: exponential, capped, with
    deterministic jitter in ``[0.5, 1.5) ×`` so a restarted
    coordinator is not met by a synchronized thundering herd -- yet two
    runs of the same campaign still sleep identically."""
    base = min(RECONNECT_BASE_SECONDS * (2 ** attempt), RECONNECT_CAP_SECONDS)
    digest = hashlib.sha256(f"reconnect:{worker_id}:{attempt}".encode()).digest()
    jitter = int.from_bytes(digest[:8], "little") / 2**64
    return base * (0.5 + jitter)


def _request_with_backoff(
    channel: Channel, message: dict, worker_id: str
) -> Optional[dict]:
    """One request/reply, riding out coordinator downtime.

    Retrying is safe for every worker message: fetches are stateless,
    commits are idempotent (first wins), and fail reports for decided
    tasks are absorbed.  Returns ``None`` once
    :data:`RECONNECT_MAX_ATTEMPTS` consecutive attempts failed -- the
    worker's signal to degrade out cleanly.
    """
    for attempt in range(RECONNECT_MAX_ATTEMPTS + 1):
        try:
            return channel.request(message)
        except ChannelClosed:
            if attempt >= RECONNECT_MAX_ATTEMPTS:
                break
            time.sleep(_reconnect_delay(worker_id, attempt))
    return None


class _Heartbeat(threading.Thread):
    """Renew one lease every ``interval`` seconds until stopped.

    Each beat is a one-shot connection so it never interleaves with the
    control channel the main thread is blocked on.  Failures are
    swallowed: a missed beat is exactly the condition leases exist to
    survive.
    """

    def __init__(
        self, address: Tuple[str, int], worker: str, lease: int, interval: float
    ) -> None:
        super().__init__(name=f"heartbeat-{lease}", daemon=True)
        self._address = address
        self._worker = worker
        self._lease = lease
        self._interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            one_shot_request(
                self._address,
                {"type": "heartbeat", "worker": self._worker, "lease": self._lease},
            )

    def stop(self) -> None:
        self._stop.set()


def _shard_records(
    task: object, key: str, result: object, elapsed: float
) -> Iterator[Tuple[str, object, float, str]]:
    """Yield ``(key, result, elapsed, label)`` ledger rows for one report.

    An ensemble chunk fans out to one row per member -- the same records
    the supervisor's ``on_complete`` writes to the primary journal, so
    merge-on-harvest is a no-op when the commit also got through.
    """
    from repro.sim.runner import _EnsembleChunk, task_identity

    if isinstance(task, _EnsembleChunk):
        share = elapsed / len(task.members)
        for member, member_result in zip(task.members, result):
            member_key, member_label = task_identity(member)
            yield member_key, member_result, share, member_label
        return
    yield key, result, elapsed, getattr(task, "label", "")


def worker_main(
    host: str,
    port: int,
    worker_id: str,
    fault_spec: str = "",
    timeout: Optional[float] = None,
    lease_ttl: float = 10.0,
    shard_ledger: Optional[str] = None,
    close_fds: Sequence[int] = (),
) -> None:
    """Run the worker loop until the coordinator says shutdown.

    ``timeout`` is the resilience policy's per-attempt wall budget,
    enforced worker-side (the coordinator cannot kill a remote attempt)
    -- it is what breaks injected hangs.  ``shard_ledger`` is this
    worker's private checkpoint journal path.  ``close_fds`` names
    control-plane fds this (forked) process inherited and must not keep
    alive -- above all the coordinator's listener: a worker-held copy
    would pin the port in LISTEN across a coordinator crash, blocking
    the replacement's rebind and black-holing sibling reconnects.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass  # already closed, or a start method that didn't inherit it
    # Installs the fault injector, resets SIGTERM, ignores SIGINT --
    # identical bootstrap to a process-pool worker.
    mark_worker_process(fault_spec)
    from repro.sim.runner import _execute_supervised

    shard: Optional[Checkpoint] = None
    if shard_ledger:
        # resume=True: a pre-existing shard under this id (same worker id
        # re-spawned after a crashed run, or a coordinator restart) must
        # *merge* with the new records, never be clobbered -- appends are
        # idempotent per content key, so re-executed tasks land once.
        shard = Checkpoint(Path(shard_ledger), resume=True)
    channel = Channel((host, port), name=f"worker-{worker_id}")
    injector = active_injector()
    heartbeat_interval = max(lease_ttl / 3.0, 0.01)
    lease_seq = 0

    try:
        while True:
            reply = _request_with_backoff(
                channel, {"type": "fetch", "worker": worker_id}, worker_id
            )
            if reply is None:
                return
            kind = reply.get("type")
            if kind == "shutdown":
                return
            if kind != "task":
                time.sleep(IDLE_POLL_SECONDS)
                continue

            lease_id = reply["lease"]
            task = reply["task"]
            key = reply["key"]
            attempt = reply["attempt"]
            lease_seq += 1

            # A partitioned worker falls silent: no heartbeats, and the
            # commit is deferred past the lease TTL, so the coordinator
            # expires the lease and requeues -- then the late commit
            # arrives when the partition heals.
            partitioned = (
                injector.partition_now(f"worker-{worker_id}", lease_seq)
                if injector is not None
                else False
            )
            beat: Optional[_Heartbeat] = None
            if not partitioned:
                beat = _Heartbeat(
                    (host, port), worker_id, lease_id, heartbeat_interval
                )
                beat.start()
            stall = (
                injector.slow_worker_stall(key, attempt)
                if injector is not None
                else 0.0
            )
            try:
                if stall:
                    time.sleep(stall)
                try:
                    with time_limit(timeout):
                        report = _execute_supervised(task, key, attempt)
                except TaskTimeout as error:
                    message = _fail_message(
                        worker_id, lease_id, key, error, "timeout"
                    )
                except Exception as error:
                    message = _fail_message(
                        worker_id, lease_id, key, error, "exception"
                    )
                else:
                    if shard is not None:
                        try:
                            for row in _shard_records(
                                task, key, report.result, report.elapsed
                            ):
                                shard.append(*row)
                        except CheckpointWriteError:
                            # The shard is durability, not delivery: a
                            # full disk must not kill the attempt.
                            pass
                    message = {
                        "type": "commit",
                        "worker": worker_id,
                        "lease": lease_id,
                        "key": key,
                        "report": report,
                    }
                if partitioned and injector is not None:
                    time.sleep(injector.spec.partition_seconds)
            finally:
                if beat is not None:
                    beat.stop()
            if _request_with_backoff(channel, message, worker_id) is None:
                return
    finally:
        channel.close()


def _fail_message(
    worker_id: str, lease_id: int, key: str, error: BaseException, kind: str
) -> dict:
    return {
        "type": "fail",
        "worker": worker_id,
        "lease": lease_id,
        "key": key,
        "kind": kind,
        "error_type": type(error).__name__,
        "error_text": str(error),
        "retryable": is_retryable(error),
    }
