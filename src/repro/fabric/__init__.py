"""Multi-host sweep fabric: a socket-served, lease-based executor backend.

The fabric turns one :class:`~repro.sim.runner.SimRunner` call into a
small distributed system on localhost (or, with the coordinator bound to
a routable address, across hosts):

* :mod:`repro.fabric.wire` -- length-prefixed pickle frames plus the
  worker-side :class:`~repro.fabric.wire.Channel` that applies injected
  network faults (drop / duplicate / delay) deterministically and
  retransmits until the coordinator answers;
* :mod:`repro.fabric.coordinator` -- the in-supervisor task server:
  work-stealing ready queue, heartbeat-renewed worker leases,
  first-commit-wins idempotent result commits keyed on the SHA-256
  content-addressed task key;
* :mod:`repro.fabric.worker` -- the worker-process loop: fetch, execute
  under the shared fault harness, journal to a per-shard checkpoint
  ledger, commit;
* :mod:`repro.fabric.backend` -- :class:`~repro.fabric.backend.FabricBackend`,
  the :class:`~repro.sim.executor.ExecutorBackend` implementation that
  spawns the workers, drives lease expiry and completion fan-in on the
  calling thread, and degrades gracefully (down to running the leftovers
  in-process) when workers die.

Robustness invariant, inherited from the process pool and pinned by the
fabric test suite: a sweep under heavy injected chaos -- crashes, hangs,
dropped / duplicated / delayed messages, partitions, slow and dead
workers, expired leases -- converges bit-identical to the fault-free
serial run.
"""

from repro.fabric.backend import FabricBackend

__all__ = ["FabricBackend"]
