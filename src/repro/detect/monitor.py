"""Sliding-window write-stream statistics and attack classification."""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Optional

from repro.util.validation import require_fraction, require_positive_int


class Verdict(str, Enum):
    """Window-level classification."""

    BENIGN = "benign"
    UNIFORM_SWEEP = "uniform-sweep"
    BURST = "burst"


@dataclass(frozen=True)
class WindowStats:
    """Statistics of one observation window.

    Attributes
    ----------
    writes:
        Window length.
    unique_fraction:
        Distinct addresses over window length -- near 1 for a uniform
        sweep wider than the window, low for bursts.
    sequential_fraction:
        Fraction of consecutive pairs with address delta +1 -- the
        signature of UAA's "one by one" scan (Section 3.1).
    repeat_fraction:
        Fraction of consecutive pairs with delta 0 -- the signature of a
        single-address burst.
    max_share:
        Largest single address's share of the window.
    """

    writes: int
    unique_fraction: float
    sequential_fraction: float
    repeat_fraction: float
    max_share: float


class WriteRateMonitor:
    """Streaming window statistics over a write-address stream.

    Parameters
    ----------
    window:
        Observation window length in writes.
    """

    def __init__(self, window: int = 4096) -> None:
        require_positive_int(window, "window")
        if window < 16:
            raise ValueError(f"window must be >= 16 for stable statistics, got {window}")
        self._window = window
        self._addresses: Deque[int] = deque(maxlen=window)
        self._counts: Counter[int] = Counter()
        self._sequential = 0
        self._repeats = 0
        self._previous: Optional[int] = None
        self._pair_deltas: Deque[int] = deque(maxlen=window)

    @property
    def window(self) -> int:
        """Configured window length."""
        return self._window

    @property
    def filled(self) -> bool:
        """Whether a full window has been observed."""
        return len(self._addresses) == self._window

    def observe(self, address: int) -> None:
        """Feed one write address."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        if len(self._addresses) == self._window:
            oldest = self._addresses[0]
            self._counts[oldest] -= 1
            if self._counts[oldest] == 0:
                del self._counts[oldest]
            oldest_delta = self._pair_deltas[0]
            if oldest_delta == 1:
                self._sequential -= 1
            elif oldest_delta == 0:
                self._repeats -= 1
        if self._previous is not None:
            delta = address - self._previous
            self._pair_deltas.append(delta)
            if delta == 1:
                self._sequential += 1
            elif delta == 0:
                self._repeats += 1
        else:
            self._pair_deltas.append(2**31)  # sentinel non-event
        self._addresses.append(address)
        self._counts[address] += 1
        self._previous = address

    def stats(self) -> WindowStats:
        """Current window statistics.

        Raises
        ------
        RuntimeError
            Before any writes have been observed.
        """
        writes = len(self._addresses)
        if writes == 0:
            raise RuntimeError("no writes observed yet")
        pairs = max(writes - 1, 1)
        return WindowStats(
            writes=writes,
            unique_fraction=len(self._counts) / writes,
            sequential_fraction=self._sequential / pairs,
            repeat_fraction=self._repeats / pairs,
            max_share=max(self._counts.values()) / writes,
        )


class AttackClassifier:
    """Window-level attack verdicts with alarm hysteresis.

    Parameters
    ----------
    monitor:
        The statistics source (owned; feed writes through
        :meth:`observe`).
    sweep_sequential_threshold:
        Sequential-pair fraction above which a window reads as a uniform
        sweep (benign strided access rarely sustains > 0.5 over thousands
        of writes; UAA is ~1.0).
    burst_repeat_threshold:
        Repeat-pair fraction above which a window reads as a burst.
    alarm_windows:
        Consecutive suspicious windows before :attr:`alarmed` latches
        (hysteresis against transient benign bursts, e.g. a memset).
    """

    def __init__(
        self,
        monitor: Optional[WriteRateMonitor] = None,
        *,
        sweep_sequential_threshold: float = 0.8,
        burst_repeat_threshold: float = 0.6,
        alarm_windows: int = 3,
    ) -> None:
        require_fraction(sweep_sequential_threshold, "sweep_sequential_threshold")
        require_fraction(burst_repeat_threshold, "burst_repeat_threshold")
        require_positive_int(alarm_windows, "alarm_windows")
        self._monitor = monitor if monitor is not None else WriteRateMonitor()
        self._sweep_threshold = sweep_sequential_threshold
        self._burst_threshold = burst_repeat_threshold
        self._alarm_windows = alarm_windows
        self._writes_in_window = 0
        self._suspicious_streak = 0
        self._alarmed_at: Optional[int] = None
        self._total_writes = 0
        self._last_verdict = Verdict.BENIGN

    @property
    def alarmed(self) -> bool:
        """Whether the alarm has latched."""
        return self._alarmed_at is not None

    @property
    def alarmed_at(self) -> Optional[int]:
        """Write index at which the alarm latched (detection latency)."""
        return self._alarmed_at

    @property
    def last_verdict(self) -> Verdict:
        """Most recent window verdict."""
        return self._last_verdict

    def classify_window(self) -> Verdict:
        """Verdict for the current window's statistics."""
        stats = self._monitor.stats()
        if stats.sequential_fraction >= self._sweep_threshold:
            return Verdict.UNIFORM_SWEEP
        if stats.repeat_fraction >= self._burst_threshold or stats.max_share >= 0.5:
            return Verdict.BURST
        return Verdict.BENIGN

    def observe(self, address: int) -> Verdict:
        """Feed one write; returns the verdict in force after it."""
        self._monitor.observe(address)
        self._total_writes += 1
        self._writes_in_window += 1
        if self._writes_in_window >= self._monitor.window:
            self._writes_in_window = 0
            self._last_verdict = self.classify_window()
            if self._last_verdict is Verdict.BENIGN:
                self._suspicious_streak = 0
            else:
                self._suspicious_streak += 1
                if (
                    self._suspicious_streak >= self._alarm_windows
                    and self._alarmed_at is None
                ):
                    self._alarmed_at = self._total_writes
        return self._last_verdict
