"""Online attack detection (extension beyond the paper).

The paper defends against UAA *passively*: Max-WE maximizes what the
weakest lines can absorb.  A memory controller can also try to *notice*
the attack -- UAA's signature (a near-perfect uniform sweep sustained far
past any benign working set) and BPA's (long single-address bursts) are
both statistically loud.  This package provides a streaming classifier:

* :class:`~repro.detect.monitor.WriteRateMonitor` -- sliding-window
  address statistics (unique fraction, sequential-step fraction, repeat
  fraction, max line share);
* :class:`~repro.detect.monitor.AttackClassifier` -- window-level verdicts
  (``benign`` / ``uniform-sweep`` / ``burst``) with configurable
  thresholds and a hysteresis counter before raising an alarm.

Detection does not replace Max-WE (an attacker who knows the detector can
slow down below its thresholds -- at which point the paper's lifetime
math is winning anyway); it gives the OS an early signal to throttle or
kill the offending process.  The EXT-DETECT bench measures detection
latency and false-positive rates on benign workloads.
"""

from repro.detect.monitor import AttackClassifier, Verdict, WindowStats, WriteRateMonitor

__all__ = ["AttackClassifier", "Verdict", "WindowStats", "WriteRateMonitor"]
