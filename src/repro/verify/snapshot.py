"""Crash-dump bundles: serialize failing state, replay it post-mortem.

When a run raises an :class:`~repro.verify.invariants.InvariantViolation`
(or a supervised worker dies on an unexpected exception), the state that
produced it is perishable -- it lives in worker-process memory and is
gone by the time the failure surfaces.  This module freezes it first: a
``.repro-debug/<name>/`` bundle holding

* ``meta.json`` -- the violation (predicate, round, details, repro key),
  the declarative task payload that produced it (when known), the active
  fault spec, and the guard's scalar ledger; and
* ``state.npz`` -- the full state arrays (backing, death schedule, wear
  budgets, dead-line mask, weights, endurance) at the moment of failure.

``python -m repro.verify replay <bundle>`` rebuilds the task from the
payload, re-installs the recorded fault spec, and re-runs it at
``paranoia=full`` -- deterministically reproducing the violation (or
reporting that it no longer fires).  ``check <bundle>`` re-evaluates the
scheme-independent invariants statically over the stored arrays.

The bundle root is ``.repro-debug/`` under the working directory;
override it with the ``REPRO_DEBUG_DIR`` environment variable, or set
that variable to the empty string to disable bundle writing entirely.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import threading
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional

import numpy as np

from repro.verify.invariants import InvariantViolation

#: Environment variable overriding (or, when empty, disabling) the root.
DEBUG_DIR_ENV = "REPRO_DEBUG_DIR"

#: Default bundle root, relative to the working directory.
DEFAULT_DEBUG_DIR = ".repro-debug"

#: Environment variable overriding the bundle cap.
DEBUG_CAP_ENV = "REPRO_DEBUG_CAP"

#: Most crash bundles kept on disk; writing one past this bound evicts
#: the oldest bundles (same policy as the cache quarantine: bundles are
#: for debugging recent failures, and a violation storm must not turn
#: the debug directory into a disk leak).
DEFAULT_DEBUG_CAP: int = 32

_META_NAME = "meta.json"
_STATE_NAME = "state.npz"

# Per-thread state: the declarative payload of the task currently
# executing (set by the runner / CLI so engine-level bundle writes can
# pin it) and a suppression flag so replays don't write bundles of
# their own.  Thread-local rather than module-global: the job service
# runs dispatcher threads that execute tasks concurrently with other
# code in the same process, and a bundle written by one thread must
# never pick up another thread's task payload.
_local = threading.local()


def _task_state() -> "tuple[Optional[dict], Optional[dict]]":
    return getattr(_local, "task", (None, None))


@contextlib.contextmanager
def task_context(payload: Optional[dict], options: Optional[dict] = None) -> Iterator[None]:
    """Pin the executing task's declarative payload for bundle writes.

    The pin is visible only to the calling thread -- the thread that
    runs the task is the thread that writes its bundles.
    """
    previous = _task_state()
    _local.task = (payload, options)
    try:
        yield
    finally:
        _local.task = previous


def current_task_payload() -> Optional[dict]:
    """The payload pinned by the calling thread's task, if any."""
    return _task_state()[0]


@contextlib.contextmanager
def suppress_bundles() -> Iterator[None]:
    """Disable bundle writing inside the block (used by replays/tests).

    Per-thread, like :func:`task_context`: a replay running in one
    thread must not silence bundles from tasks on other threads.
    """
    previous = getattr(_local, "suppressed", False)
    _local.suppressed = True
    try:
        yield
    finally:
        _local.suppressed = previous


def bundle_root(root: "str | os.PathLike | None" = None) -> Optional[Path]:
    """Resolve the bundle root; ``None`` means bundles are disabled."""
    if getattr(_local, "suppressed", False):
        return None
    if root is not None:
        return Path(root)
    env = os.environ.get(DEBUG_DIR_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path(DEFAULT_DEBUG_DIR)


def _active_fault_spec() -> str:
    from repro.sim.faults import active_injector

    injector = active_injector()
    return injector.spec.to_spec() if injector is not None else ""


def _allocate_dir(root: Path, stem: str) -> Path:
    root.mkdir(parents=True, exist_ok=True)
    candidate = root / stem
    suffix = 1
    while candidate.exists():
        suffix += 1
        candidate = root / f"{stem}-{suffix}"
    candidate.mkdir()
    return candidate


def _prune_bundles(root: Path, keep: Path) -> int:
    """Evict the oldest bundle dirs past the cap; returns the count.

    ``keep`` (the bundle just written) is never evicted, even when its
    mtime sorts it oldest on a coarse-grained filesystem clock.
    """
    from repro.sim.cache import _resolve_cap, prune_oldest

    cap = _resolve_cap(None, DEBUG_CAP_ENV, DEFAULT_DEBUG_CAP)
    candidates = [
        entry
        for entry in root.iterdir()
        if entry.is_dir() and (entry / _META_NAME).is_file() and entry != keep
    ]
    return prune_oldest(
        candidates, max(cap - 1, 0), lambda entry: shutil.rmtree(entry)
    )


def _jsonable(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return str(value)


def _write_meta(directory: Path, meta: dict) -> None:
    path = directory / _META_NAME
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True, default=_jsonable)
        handle.write("\n")


def write_violation_bundle(
    violation: InvariantViolation,
    *,
    scalars: Optional[dict] = None,
    root: "str | os.PathLike | None" = None,
) -> Optional[Path]:
    """Serialize a violation (and its attached arrays) to a bundle.

    Returns the bundle directory, or ``None`` when bundles are disabled.
    Idempotent per violation: a violation already bundled (e.g. by the
    engine, before the supervisor saw it) is not bundled again.
    """
    if violation.bundle_path is not None:
        return Path(violation.bundle_path)
    resolved = bundle_root(root)
    if resolved is None:
        return None
    directory = _allocate_dir(resolved, f"violation-{violation.invariant}")
    meta = {
        "kind": "violation",
        "invariant": violation.invariant,
        "round": violation.round_index,
        "message": violation.message,
        "details": violation.details,
        "repro": violation.repro,
        "scalars": dict(scalars or {}),
        "task": _task_state()[0],
        "task_options": _task_state()[1],
        "fault_spec": _active_fault_spec(),
        "divergence": type(violation).__name__,
    }
    _write_meta(directory, meta)
    if violation.arrays:
        np.savez_compressed(directory / _STATE_NAME, **violation.arrays)
    violation.bundle_path = str(directory)
    _prune_bundles(resolved, directory)
    return directory


def write_error_bundle(
    error: BaseException,
    *,
    key: str = "",
    root: "str | os.PathLike | None" = None,
) -> Optional[Path]:
    """Serialize an unexpected worker exception's context to a bundle."""
    resolved = bundle_root(root)
    if resolved is None:
        return None
    directory = _allocate_dir(resolved, f"error-{type(error).__name__.lower()}")
    meta = {
        "kind": "error",
        "error": type(error).__name__,
        "message": str(error),
        "traceback": traceback.format_exception(type(error), error, error.__traceback__),
        "task_key": key,
        "task": _task_state()[0],
        "task_options": _task_state()[1],
        "fault_spec": _active_fault_spec(),
    }
    _write_meta(directory, meta)
    _prune_bundles(resolved, directory)
    return directory


# ----------------------------------------------------------------------
# Loading and replaying
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Bundle:
    """One loaded ``.repro-debug`` bundle."""

    path: Path
    meta: dict
    arrays: dict = field(default_factory=dict)

    @property
    def kind(self) -> str:
        """``"violation"`` or ``"error"``."""
        return str(self.meta.get("kind", "unknown"))

    @property
    def replayable(self) -> bool:
        """Whether the bundle pins a declarative task to re-run."""
        return isinstance(self.meta.get("task"), dict)


def load_bundle(path: "str | os.PathLike") -> Bundle:
    """Load a bundle directory written by this module."""
    directory = Path(path)
    meta_path = directory / _META_NAME
    if not meta_path.is_file():
        raise FileNotFoundError(f"{directory} is not a repro-debug bundle (no meta.json)")
    with open(meta_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    arrays = {}
    state_path = directory / _STATE_NAME
    if state_path.is_file():
        with np.load(state_path) as stored:
            arrays = {name: stored[name] for name in stored.files}
    return Bundle(path=directory, meta=meta, arrays=arrays)


def list_bundles(root: "str | os.PathLike | None" = None) -> List[Path]:
    """Bundle directories under the root, oldest first."""
    resolved = Path(root) if root is not None else bundle_root()
    if resolved is None or not resolved.is_dir():
        return []
    found = [
        entry
        for entry in resolved.iterdir()
        if entry.is_dir() and (entry / _META_NAME).is_file()
    ]
    return sorted(found, key=lambda entry: (entry.stat().st_mtime, entry.name))


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of deterministically re-running a bundle's task."""

    bundle: Path
    reproduced: bool
    notes: str
    violation: Optional[InvariantViolation] = None

    def __str__(self) -> str:
        status = "REPRODUCED" if self.reproduced else "not reproduced"
        return f"{self.bundle}: {status} -- {self.notes}"


def _rebuild_task(meta: dict):
    from repro.sim.config import ExperimentConfig
    from repro.sim.runner import SimTask

    payload = meta["task"]
    options = meta.get("task_options") or {}
    config = ExperimentConfig(**payload["config"])
    return SimTask(
        attack=payload["attack"],
        sparing=payload["sparing"],
        wearlevel=payload["wearlevel"],
        p=payload["p"],
        swr=payload["swr"],
        config=config,
        seed=payload["seed"],
        emap_seed=payload["emap_seed"],
        engine=payload["engine"],
        paranoia="full",
        shadow_sample=float(options.get("shadow_sample", 0.0)),
    )


def replay(path: "str | os.PathLike") -> ReplayReport:
    """Re-run a bundle's pinned task at ``paranoia=full``.

    The recorded fault spec is re-installed for the duration (injection
    is deterministic in the task key, so the same corruption recurs) and
    bundle writing is suppressed so the replay leaves no new bundles.
    """
    from repro.sim import faults

    bundle = load_bundle(path)
    if not bundle.replayable:
        return ReplayReport(
            bundle=bundle.path,
            reproduced=False,
            notes=(
                "bundle carries no declarative task payload "
                "(non-SimTask origin); inspect meta.json/state.npz manually"
            ),
        )
    task = _rebuild_task(bundle.meta)
    expected = bundle.meta.get("invariant")
    previous = faults.active_injector()
    faults.install(bundle.meta.get("fault_spec") or None)
    try:
        with suppress_bundles():
            task.execute()
    except InvariantViolation as violation:
        matches = expected is None or violation.invariant == expected
        return ReplayReport(
            bundle=bundle.path,
            reproduced=matches,
            notes=(
                f"raised {type(violation).__name__} on invariant "
                f"{violation.invariant!r} at round {violation.round_index}"
                + ("" if matches else f" (bundle recorded {expected!r})")
            ),
            violation=violation,
        )
    finally:
        faults.install(previous.spec if previous is not None else None)
    return ReplayReport(
        bundle=bundle.path,
        reproduced=False,
        notes=(
            "task completed cleanly at paranoia=full"
            + (f"; bundled violation was {expected!r}" if expected else "")
        ),
    )


def static_check(bundle: Bundle) -> List[str]:
    """Re-evaluate scheme-independent invariants over stored arrays.

    Returns the failure messages (empty = the stored state satisfies
    every applicable predicate).  Useful to confirm a bundle captured
    genuinely corrupt state, without re-running anything.
    """
    from repro.verify.invariants import (
        _check_mapping_consistency,
        _check_no_dead_line_writes,
        _check_nonnegative_endurance,
        _check_wear_conservation,
        EngineView,
    )

    required = {"backing", "current_death", "budget", "in_service", "dead_mask"}
    if not required.issubset(bundle.arrays):
        return [f"bundle has no state arrays ({sorted(required)} required)"]
    scalars = bundle.meta.get("scalars") or {}
    details = bundle.meta.get("details") or {}

    def scalar(name: str, default: float = 0.0) -> float:
        return float(scalars.get(name, details.get(name, default)))

    view = EngineView(
        served=scalar("served"),
        v_now=scalar("v_now"),
        deaths=int(scalar("deaths")),
        eta=scalar("eta", 1.0),
        weights=bundle.arrays.get("weights", np.ones(bundle.arrays["backing"].size)),
        backing=bundle.arrays["backing"],
        current_death=bundle.arrays["current_death"],
        endurance=bundle.arrays.get(
            "endurance", np.full(int(bundle.arrays["backing"].max()) + 1, np.inf)
        ),
        total_endurance=scalar("total_endurance", np.inf),
        sparing=_StatelessScheme(),
        budget=bundle.arrays["budget"],
        in_service=bundle.arrays["in_service"].astype(bool),
        dead_mask=bundle.arrays["dead_mask"].astype(bool),
        wear_retired=scalar("wear_retired"),
        wear_extended=scalar("wear_extended"),
        guard_deaths=int(scalar("deaths")),
        last_served=0.0,
        last_v=0.0,
        rounds=int(bundle.meta.get("round", 0)),
        tolerance=scalar("tolerance", 1e-6),
        final=True,
    )
    failures = []
    for check in (
        _check_wear_conservation,
        _check_nonnegative_endurance,
        _check_mapping_consistency,
        _check_no_dead_line_writes,
    ):
        message = check(view)
        if message is not None:
            failures.append(message)
    return failures


class _StatelessScheme:
    """Stand-in scheme for static bundle checks (tables not serialized)."""

    def pool_accounting(self):
        return None

    def check_integrity(self, backing=None, dead_lines=None) -> None:
        return None
