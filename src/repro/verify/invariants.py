"""Runtime state-integrity invariants for the lifetime engines.

The figures this repository reproduces are only as trustworthy as the
simulator's bookkeeping: normalized lifetime is computed from mapping
tables, spare-pool accounting, and per-line wear budgets, and a single
silently-corrupted entry invalidates every downstream number.  This
module is the defensive layer that makes such corruption *loud*: a
declarative registry of invariants over live engine state, evaluated by
an :class:`EngineGuard` at a configurable cadence (the ``paranoia``
level), raising a structured :class:`InvariantViolation` the moment a
predicate fails.

Paranoia levels
---------------
``off``
    No guard is constructed; the engine runs exactly as before.
``cheap``
    O(1) scalar invariants every :data:`CHEAP_CADENCE` rounds, plus one
    *full* sweep after the final round -- persistent corruption is
    always caught by end of run, at near-zero steady-state cost.
``full``
    Every invariant, every round.  Corruption is caught on the round it
    happens (the fault-injection CI job relies on this to prove 100%
    detection).

Checks never mutate engine or scheme state, so results are bit-identical
across all three levels.

The wear-conservation invariant
-------------------------------
The guard maintains its own shadow ledger: a per-slot wear budget
(seeded from the endurance of each slot's backing line and updated from
the replacement verdicts), the total wear retired by deaths, and the
total budget added by in-place repairs.  At any instant the engine's
served-writes integral must equal ``eta`` times the wear consumed::

    served  ==  eta * (retired + sum_alive(budget_i - remaining_i))

where ``remaining_i = (current_death_i - v_now) * weight_i``.  Because
the ledger is derived from the *verdict stream* rather than the engine's
own integral, the two sides are independent computations of the same
quantity; the comparison tolerance is supplied by the engine
(:func:`repro.sim.lifetime.accounting_tolerance`), derived from its
float accumulation depth rather than a magic epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry, maybe_span
from repro.sparing.base import (
    BATCH_EXTEND,
    BATCH_FAIL,
    BATCH_REMOVE,
    BATCH_REPLACE,
    SchemeIntegrityError,
    SpareScheme,
)

#: Paranoia levels accepted by the engine, runner surfaces, and CLI.
PARANOIA_LEVELS = ("off", "cheap", "full")

#: Rounds between check sweeps in ``cheap`` mode.
CHEAP_CADENCE = 64

#: Invariant cost tiers: ``cheap`` = O(1) scalars, ``full`` = O(slots).
COST_CHEAP = "cheap"
COST_FULL = "full"


def normalize_paranoia(level: str) -> str:
    """Validate a paranoia level or raise ``ValueError``."""
    if level not in PARANOIA_LEVELS:
        raise ValueError(
            f"paranoia must be one of {PARANOIA_LEVELS}, got {level!r}"
        )
    return level


def _rebuild_violation(cls, invariant, round_index, message, details, repro, bundle):
    violation = cls(invariant, round_index, message, details=details, repro=repro)
    violation.bundle_path = bundle
    return violation


class InvariantViolation(RuntimeError):
    """A state-integrity predicate failed mid-run.

    Attributes
    ----------
    invariant:
        Name of the failing predicate (registry entry).
    round_index:
        1-based engine round (epoch for the batched engine, death event
        for the scalar one) at which the check fired.
    message:
        Human-readable description of the failed predicate.
    details:
        Minimal state snapshot: the scalar values the predicate compared
        (picklable, crosses process boundaries intact).
    repro:
        Pinned reproduction key (seed, scheme, engine, attack, round
        window) identifying the failing run.
    arrays:
        Full state arrays attached at raise time for the crash-dump
        bundle; not pickled (the bundle is written worker-side).
    bundle_path:
        Path of the ``.repro-debug/`` bundle, once written.

    Deliberately *not* retryable by the supervision policy: the failure
    is deterministic in the task, so re-running cannot help.
    """

    def __init__(
        self,
        invariant: str,
        round_index: int,
        message: str,
        *,
        details: Optional[dict] = None,
        repro: Optional[dict] = None,
    ) -> None:
        super().__init__(
            f"invariant {invariant!r} violated at round {round_index}: {message}"
        )
        self.invariant = invariant
        self.round_index = int(round_index)
        self.message = message
        self.details: Dict[str, object] = dict(details or {})
        self.repro: Dict[str, object] = dict(repro or {})
        self.arrays: Dict[str, np.ndarray] = {}
        self.bundle_path: Optional[str] = None

    def __reduce__(self):
        return (
            _rebuild_violation,
            (
                type(self),
                self.invariant,
                self.round_index,
                self.message,
                self.details,
                self.repro,
                self.bundle_path,
            ),
        )


@dataclass(frozen=True)
class EngineView:
    """Read-only snapshot of live engine + guard state for one check.

    Engine-owned fields reference the engine's live arrays (never
    mutated by checks); ledger fields come from the guard's shadow
    bookkeeping.
    """

    # Engine-owned state.
    served: float
    v_now: float
    deaths: int
    eta: float
    weights: np.ndarray
    backing: np.ndarray
    current_death: np.ndarray
    endurance: np.ndarray
    total_endurance: float
    sparing: SpareScheme
    # Guard ledger.
    budget: np.ndarray
    in_service: np.ndarray
    dead_mask: np.ndarray
    wear_retired: float
    wear_extended: float
    guard_deaths: int
    last_served: float
    last_v: float
    rounds: int
    tolerance: float
    final: bool
    #: Ensemble-engine runs tag each view with the trial it snapshots
    #: (each trial has its own guard; ``None`` for solo-engine runs).
    trial: Optional[int] = None


#: An invariant check returns ``None`` on success or a failure message.
CheckFn = Callable[[EngineView], Optional[str]]


@dataclass(frozen=True)
class Invariant:
    """One declarative state-integrity predicate.

    Attributes
    ----------
    name:
        Stable identifier (appears in violations, metrics, and docs).
    cost:
        :data:`COST_CHEAP` (O(1) scalars, run at every cadence tick) or
        :data:`COST_FULL` (O(slots) array scans, run in ``full`` mode
        and in every level's final sweep).
    description:
        One-line statement of the predicate, for the catalog.
    check:
        The predicate; returns ``None`` or a failure message.
    """

    name: str
    cost: str
    description: str
    check: CheckFn

    def __post_init__(self) -> None:
        if self.cost not in (COST_CHEAP, COST_FULL):
            raise ValueError(f"invariant cost must be cheap|full, got {self.cost!r}")


# ----------------------------------------------------------------------
# The built-in predicates
# ----------------------------------------------------------------------


def _check_clock_monotone(view: EngineView) -> Optional[str]:
    if view.v_now < 0.0:
        return f"virtual clock is negative (v_now={view.v_now!r})"
    if view.v_now < view.last_v:
        return (
            f"virtual clock moved backwards (v_now={view.v_now!r} < "
            f"previous {view.last_v!r})"
        )
    return None


def _check_served_bounds(view: EngineView) -> Optional[str]:
    tol = view.tolerance
    if view.served < -tol:
        return f"served writes negative ({view.served!r})"
    if view.served < view.last_served - tol:
        return (
            f"served writes decreased ({view.served!r} < previous "
            f"{view.last_served!r})"
        )
    ceiling = view.eta * (view.total_endurance + view.wear_extended)
    if view.served > ceiling + tol:
        return (
            f"served writes {view.served!r} exceed the device's total "
            f"serveable wear {ceiling!r} (endurance {view.total_endurance!r} "
            f"+ extensions {view.wear_extended!r}, eta={view.eta!r})"
        )
    return None


def _check_death_count(view: EngineView) -> Optional[str]:
    if view.deaths != view.guard_deaths:
        return (
            f"engine death counter ({view.deaths}) disagrees with the "
            f"verdict-stream ledger ({view.guard_deaths})"
        )
    return None


def _check_pool_accounting(view: EngineView) -> Optional[str]:
    accounting = view.sparing.pool_accounting()
    if accounting is None:
        return None
    size = int(accounting.get("size", 0))
    free = int(accounting.get("free", 0))
    allocated = int(accounting.get("allocated", 0))
    if free < 0 or allocated < 0:
        return f"negative spare-pool counters (free={free}, allocated={allocated})"
    if free + allocated != size:
        return (
            f"spare pool does not account for itself: free ({free}) + "
            f"allocated ({allocated}) != size ({size})"
        )
    entries = accounting.get("lmt_entries")
    if entries is not None:
        entries = int(entries)
        rescued = accounting.get("rescued_slots")
        capacity = accounting.get("lmt_capacity")
        if entries > allocated:
            return (
                f"LMT holds {entries} entries but only {allocated} spares "
                "were ever allocated"
            )
        if capacity is not None and entries > int(capacity):
            return f"LMT holds {entries} entries over its capacity {capacity}"
        if rescued is not None and entries != int(rescued):
            return (
                f"LMT entry count ({entries}) disagrees with the number of "
                f"rescued slots ({rescued})"
            )
    return None


def _check_wear_conservation(view: EngineView) -> Optional[str]:
    finite = np.isfinite(view.current_death)
    remaining = (view.current_death[finite] - view.v_now) * view.weights[finite]
    consumed_alive = float(view.budget[finite].sum() - remaining.sum())
    expected = view.eta * (view.wear_retired + consumed_alive)
    drift = abs(view.served - expected)
    if drift > view.tolerance:
        return (
            f"served writes ({view.served!r}) disagree with wear consumed "
            f"({expected!r}; retired={view.wear_retired!r}, "
            f"alive={consumed_alive!r}, eta={view.eta!r}) by {drift!r} "
            f"> tolerance {view.tolerance!r}"
        )
    return None


def _check_nonnegative_endurance(view: EngineView) -> Optional[str]:
    if view.budget.size and float(view.budget.min()) < 0.0:
        slot = int(view.budget.argmin())
        return f"slot {slot} carries a negative wear budget ({float(view.budget[slot])!r})"
    finite = np.isfinite(view.current_death)
    if not finite.any():
        return None
    deadline = view.current_death[finite]
    if float(deadline.min()) < view.v_now - view.tolerance:
        slots = np.flatnonzero(finite)
        slot = int(slots[deadline.argmin()])
        return (
            f"slot {slot} is scheduled to die in the past "
            f"(death={float(view.current_death[slot])!r} < v_now={view.v_now!r}): "
            "its remaining endurance is negative"
        )
    remaining = (deadline - view.v_now) * view.weights[finite]
    excess = remaining - view.budget[finite]
    if float(excess.max(initial=-np.inf)) > view.tolerance:
        slots = np.flatnonzero(finite)
        slot = int(slots[excess.argmax()])
        return (
            f"slot {slot} has more endurance remaining "
            f"({remaining[excess.argmax()]!r}) than its ledger budget "
            f"({view.budget[slot]!r})"
        )
    return None


def _check_mapping_consistency(view: EngineView) -> Optional[str]:
    lines = view.backing[view.in_service]
    if lines.size:
        if int(lines.min()) < 0 or int(lines.max()) >= view.endurance.size:
            return "a slot is backed by a line outside the device"
        # bincount is linear in slots + lines; a sort-based duplicate
        # check (np.unique) dominated the whole sweep at device scale.
        counts = np.bincount(lines, minlength=view.endurance.size)
        if int(counts.max()) > 1:
            line = int(counts.argmax())
            slots = np.flatnonzero(view.in_service & (view.backing == line))
            return (
                f"physical line {line} backs {counts[line]} slots at once "
                f"(slots {slots[:8].tolist()})"
            )
    try:
        view.sparing.check_integrity(backing=view.backing, dead_lines=view.dead_mask)
    except SchemeIntegrityError as error:
        return f"scheme tables inconsistent: {error}"
    return None


def _check_no_dead_line_writes(view: EngineView) -> Optional[str]:
    active = view.in_service & np.isfinite(view.current_death)
    if not active.any():
        return None
    dead = view.dead_mask[view.backing[active]]
    if dead.any():
        slots = np.flatnonzero(active)
        slot = int(slots[int(np.flatnonzero(dead)[0])])
        return (
            f"slot {slot} is still being written through dead line "
            f"{int(view.backing[slot])}"
        )
    return None


#: The built-in invariant catalog (see docs/verification.md).
DEFAULT_INVARIANTS: Tuple[Invariant, ...] = (
    Invariant(
        "clock-monotone",
        COST_CHEAP,
        "the virtual clock never moves backwards or goes negative",
        _check_clock_monotone,
    ),
    Invariant(
        "served-bounds",
        COST_CHEAP,
        "served writes are non-negative, monotone, and bounded by the "
        "device's total serveable wear",
        _check_served_bounds,
    ),
    Invariant(
        "death-count",
        COST_CHEAP,
        "the engine's death counter matches the verdict-stream ledger",
        _check_death_count,
    ),
    Invariant(
        "spare-pool-accounting",
        COST_CHEAP,
        "free + allocated spares equal the pool size and LMT occupancy "
        "matches the rescued-slot count",
        _check_pool_accounting,
    ),
    # non-negative-endurance precedes wear-conservation: a slot scheduled
    # to die in the past also skews the wear ledger, and the specific
    # diagnosis should win over the aggregate one.
    Invariant(
        "non-negative-endurance",
        COST_FULL,
        "no slot's remaining endurance is negative or exceeds its ledger "
        "budget",
        _check_nonnegative_endurance,
    ),
    Invariant(
        "wear-conservation",
        COST_FULL,
        "writes served equal wear consumed (retired + in-flight) within "
        "the engine's accounting tolerance",
        _check_wear_conservation,
    ),
    Invariant(
        "mapping-consistency",
        COST_FULL,
        "no two slots share a physical line and the scheme's RMT/LMT "
        "tables are internally consistent with the live backing",
        _check_mapping_consistency,
    ),
    Invariant(
        "no-dead-line-writes",
        COST_FULL,
        "no actively written slot is backed by a line that already died",
        _check_no_dead_line_writes,
    ),
)


class InvariantRegistry:
    """An ordered, extensible collection of invariants."""

    def __init__(self, invariants: Iterable[Invariant] = DEFAULT_INVARIANTS) -> None:
        self._invariants: list[Invariant] = []
        self._names: set[str] = set()
        for invariant in invariants:
            self.register(invariant)

    def register(self, invariant: Invariant) -> None:
        """Add an invariant; names must be unique."""
        if invariant.name in self._names:
            raise ValueError(f"invariant {invariant.name!r} already registered")
        self._names.add(invariant.name)
        self._invariants.append(invariant)

    def select(self, include_full: bool) -> Tuple[Invariant, ...]:
        """The invariants to run for one sweep."""
        if include_full:
            return tuple(self._invariants)
        return tuple(i for i in self._invariants if i.cost == COST_CHEAP)

    def __iter__(self):
        return iter(self._invariants)

    def __len__(self) -> int:
        return len(self._invariants)


#: Process-wide default registry used by every guard unless overridden.
REGISTRY = InvariantRegistry()


class EngineGuard:
    """The engine-side integrity monitor: ledger + cadenced checking.

    One guard is constructed per :class:`~repro.sim.lifetime
    .LifetimeSimulator` run when ``paranoia != "off"``.  The engine feeds
    it the replacement-verdict stream (:meth:`record_batch` /
    :meth:`record_death`) and calls :meth:`on_round` at the top of every
    kernel round plus :meth:`final_check` after the loop; the guard keeps
    its shadow wear ledger and evaluates the registry at the level's
    cadence, raising :class:`InvariantViolation` on the first failure.
    """

    def __init__(
        self,
        paranoia: str,
        *,
        sparing: SpareScheme,
        endurance: np.ndarray,
        weights: np.ndarray,
        eta: float,
        total_endurance: float,
        tolerance: Callable[[float, int], float],
        metrics: Optional[MetricsRegistry] = None,
        repro: Optional[dict] = None,
        registry: Optional[InvariantRegistry] = None,
        cadence: int = CHEAP_CADENCE,
    ) -> None:
        self._paranoia = normalize_paranoia(paranoia)
        if self._paranoia == "off":
            raise ValueError("no guard should be constructed at paranoia='off'")
        self._sparing = sparing
        self._endurance = endurance
        self._weights = weights
        self._eta = float(eta)
        self._total_endurance = float(total_endurance)
        self._tolerance = tolerance
        self._metrics = metrics
        self._repro = dict(repro or {})
        self._registry = registry if registry is not None else REGISTRY
        self._cadence = max(int(cadence), 1)
        # Ledger state (populated by start()).
        self.budget = np.empty(0, dtype=float)
        self.in_service = np.empty(0, dtype=bool)
        self.dead_mask = np.empty(0, dtype=bool)
        self.wear_retired = 0.0
        self.wear_extended = 0.0
        self.guard_deaths = 0
        self.rounds = 0
        self.checks = 0
        self._last_served = 0.0
        self._last_v = 0.0

    @property
    def paranoia(self) -> str:
        """The level this guard runs at (never ``"off"``)."""
        return self._paranoia

    def start(self, backing: np.ndarray) -> None:
        """Seed the ledger from the initial slot-to-line assignment."""
        self.budget = self._endurance[backing].astype(float)
        self.in_service = np.ones(backing.size, dtype=bool)
        self.dead_mask = np.zeros(self._endurance.size, dtype=bool)
        self.wear_retired = 0.0
        self.wear_extended = 0.0
        self.guard_deaths = 0
        self.rounds = 0
        self.checks = 0
        self._last_served = 0.0
        self._last_v = 0.0

    # ------------------------------------------------------------------
    # Ledger updates (verdict stream)
    # ------------------------------------------------------------------

    def record_batch(
        self,
        sel: np.ndarray,
        dead_lines: np.ndarray,
        actions: np.ndarray,
        lines: np.ndarray,
        wear: np.ndarray,
    ) -> None:
        """Fold one epoch's (truncated) verdict arrays into the ledger."""
        self.guard_deaths += int(sel.size)
        self.wear_retired += float(self.budget[sel].sum())
        rep = actions == BATCH_REPLACE
        ext = actions == BATCH_EXTEND
        gone = (actions == BATCH_REMOVE) | (actions == BATCH_FAIL)
        # In-place repairs keep serving through the same line; every
        # other verdict leaves the old backing line dead for good.
        self.dead_mask[dead_lines[~ext]] = True
        if rep.any():
            self.budget[sel[rep]] = self._endurance[lines[rep]]
        if ext.any():
            extensions = wear[ext]
            self.budget[sel[ext]] = extensions
            self.wear_extended += float(extensions.sum())
        if gone.any():
            self.budget[sel[gone]] = 0.0
            self.in_service[sel[gone]] = False

    def record_death(
        self,
        slot: int,
        dead_line: int,
        action: int,
        line: int = -1,
        wear: float = 0.0,
    ) -> None:
        """Scalar-engine counterpart of :meth:`record_batch`."""
        self.guard_deaths += 1
        self.wear_retired += float(self.budget[slot])
        if action == BATCH_EXTEND:
            self.budget[slot] = wear
            self.wear_extended += float(wear)
            return
        self.dead_mask[dead_line] = True
        if action == BATCH_REPLACE:
            self.budget[slot] = float(self._endurance[line])
        else:
            self.budget[slot] = 0.0
            self.in_service[slot] = False

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def make_view(
        self,
        *,
        served: float,
        v_now: float,
        deaths: int,
        backing: np.ndarray,
        current_death: np.ndarray,
        final: bool = False,
        trial: Optional[int] = None,
    ) -> EngineView:
        """Join the engine's live state with the ledger for one check."""
        events = self.guard_deaths + backing.size
        return EngineView(
            served=float(served),
            v_now=float(v_now),
            deaths=int(deaths),
            eta=self._eta,
            weights=self._weights,
            backing=backing,
            current_death=current_death,
            endurance=self._endurance,
            total_endurance=self._total_endurance,
            sparing=self._sparing,
            budget=self.budget,
            in_service=self.in_service,
            dead_mask=self.dead_mask,
            wear_retired=self.wear_retired,
            wear_extended=self.wear_extended,
            guard_deaths=self.guard_deaths,
            last_served=self._last_served,
            last_v=self._last_v,
            rounds=self.rounds,
            tolerance=self._tolerance(
                self._total_endurance + self.wear_extended, events
            ),
            final=final,
            trial=trial,
        )

    def on_round(self, view_of: Callable[[], EngineView]) -> None:
        """Round hook: advance the cadence and check when it ticks.

        ``view_of`` is a zero-argument view builder so the (cheap but
        not free) view construction is skipped on non-checking rounds.
        """
        self.rounds += 1
        if self._paranoia == "full" or self.rounds % self._cadence == 0:
            self._sweep(view_of(), include_full=self._paranoia == "full")

    def final_check(self, view_of: Callable[[], EngineView]) -> None:
        """End-of-run hook: a full sweep at every paranoia level."""
        self._sweep(view_of(), include_full=True)

    def _sweep(self, view: EngineView, include_full: bool) -> None:
        invariants = self._registry.select(include_full)
        with maybe_span(self._metrics, "verify/invariants"):
            for invariant in invariants:
                self.checks += 1
                message = invariant.check(view)
                if message is not None:
                    self._fail(invariant, message, view)
        if self._metrics is not None:
            self._metrics.inc("verify.checks", len(invariants))
        self._last_served = view.served
        self._last_v = view.v_now

    def _fail(self, invariant: Invariant, message: str, view: EngineView) -> None:
        if self._metrics is not None:
            self._metrics.inc("verify.violations")
        repro = dict(self._repro)
        repro["round_window"] = [0, view.rounds]
        violation = InvariantViolation(
            invariant.name,
            view.rounds,
            message,
            details={
                "served": view.served,
                "v_now": view.v_now,
                "deaths": view.deaths,
                "wear_retired": view.wear_retired,
                "wear_extended": view.wear_extended,
                "eta": view.eta,
                "total_endurance": view.total_endurance,
                "tolerance": view.tolerance,
                "paranoia": self._paranoia,
                "final": view.final,
                **({} if view.trial is None else {"trial": view.trial}),
            },
            repro=repro,
        )
        violation.arrays = {
            "backing": np.array(view.backing, copy=True),
            "current_death": np.array(view.current_death, copy=True),
            "budget": np.array(view.budget, copy=True),
            "in_service": np.array(view.in_service, copy=True),
            "dead_mask": np.array(view.dead_mask, copy=True),
            "weights": np.array(view.weights, copy=True),
            "endurance": np.array(view.endurance, copy=True),
        }
        raise violation
