"""Post-mortem tool for ``.repro-debug/`` crash-dump bundles.

Usage::

    python -m repro.verify list [ROOT]           # enumerate bundles
    python -m repro.verify replay BUNDLE         # re-run deterministically
    python -m repro.verify check BUNDLE          # static invariant check

``replay`` rebuilds the bundle's pinned task, re-installs its fault
spec, and re-runs at ``paranoia=full``; exit code 0 when the recorded
violation reproduces (or a clean bundle stays clean), 1 otherwise.
``check`` re-evaluates the scheme-independent invariants over the
stored state arrays without executing anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.verify import snapshot


def _cmd_list(args: argparse.Namespace) -> int:
    bundles = snapshot.list_bundles(args.root)
    if not bundles:
        print("no bundles found")
        return 0
    for path in bundles:
        bundle = snapshot.load_bundle(path)
        if bundle.kind == "violation":
            summary = (
                f"invariant={bundle.meta.get('invariant')} "
                f"round={bundle.meta.get('round')}"
            )
        else:
            summary = f"error={bundle.meta.get('error')}"
        replayable = "replayable" if bundle.replayable else "state-only"
        print(f"{path}  [{bundle.kind}] {summary} ({replayable})")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    report = snapshot.replay(args.bundle)
    print(report)
    bundle = snapshot.load_bundle(args.bundle)
    if bundle.kind == "violation":
        return 0 if report.reproduced else 1
    # Error bundles have no expected violation; a clean replay is success.
    return 0 if report.violation is None else 1


def _cmd_check(args: argparse.Namespace) -> int:
    bundle = snapshot.load_bundle(args.bundle)
    failures = snapshot.static_check(bundle)
    if args.json:
        print(json.dumps({"bundle": str(bundle.path), "failures": failures}, indent=2))
    else:
        if failures:
            for message in failures:
                print(f"FAIL: {message}")
        else:
            print(f"{bundle.path}: stored state satisfies every applicable invariant")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Inspect and replay .repro-debug crash-dump bundles.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("list", help="enumerate bundles under a root")
    cmd.add_argument("root", nargs="?", default=None, help="bundle root directory")
    cmd.set_defaults(handler=_cmd_list)

    cmd = commands.add_parser("replay", help="re-run a bundle's task deterministically")
    cmd.add_argument("bundle", help="bundle directory")
    cmd.set_defaults(handler=_cmd_replay)

    cmd = commands.add_parser("check", help="static invariant check over stored state")
    cmd.add_argument("bundle", help="bundle directory")
    cmd.add_argument("--json", action="store_true", help="machine-readable output")
    cmd.set_defaults(handler=_cmd_check)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
