"""Sampled differential shadow audits of the batched engine.

PR2 proved the vectorized ``fluid-batched`` kernel equivalent to the
scalar ``fluid-exact`` event loop with an offline Hypothesis suite; this
module turns that equivalence into an *always-on production check*.  At
a configurable sample rate, a run of the batched engine is transparently
re-executed on the exact reference engine and the two results are
compared; any divergence escalates as a :class:`ShadowDivergence`
carrying a pinned repro key (seed, scheme, engine pair, round window) so
the failing run can be replayed byte-for-byte.

Sampling is deterministic in the task key (the same hash-roll scheme the
fault injector uses), so a sweep audits the same subset of its tasks on
every invocation -- a diverging task keeps diverging until fixed, and a
clean sweep stays bit-identical run to run.  The audit reads the primary
result only after it is complete, so sampled and unsampled runs return
identical results; the cost of a sampled run is one extra scalar-engine
execution.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional

from repro.sim.result import SimulationResult
from repro.verify.invariants import InvariantViolation

#: Relative tolerance on the served-writes comparison -- the same bound
#: PR2's offline equivalence suite tests at (the engines share every
#: death-time expression; only the integral's summation order differs).
SHADOW_WRITES_RTOL = 1e-9

#: Fields that must match exactly between the two engines.
_EXACT_FIELDS = ("deaths", "replacements", "failure_reason")


class ShadowDivergence(InvariantViolation):
    """The batched engine and the exact reference engine disagreed."""


def should_audit(sample: float, key: str) -> bool:
    """Deterministic sampling decision for one run.

    A pure function of ``(sample, key)``: the same task is audited (or
    not) on every run of a campaign, independent of scheduling.
    """
    if sample <= 0.0:
        return False
    if sample >= 1.0:
        return True
    digest = hashlib.sha256(f"shadow:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2**64 < sample


def compare_runs(
    primary: SimulationResult,
    shadow: SimulationResult,
    *,
    rounds: int,
    repro: Optional[dict] = None,
    rtol: float = SHADOW_WRITES_RTOL,
) -> None:
    """Raise :class:`ShadowDivergence` unless the two results agree.

    Death/replacement counts and the failure reason must match exactly;
    ``writes_served`` must agree to ``rtol`` (summation order is the only
    legitimate difference between the engines).
    """
    mismatches = {}
    for fld in _EXACT_FIELDS:
        lhs, rhs = getattr(primary, fld), getattr(shadow, fld)
        if lhs != rhs:
            mismatches[fld] = {"batched": lhs, "exact": rhs}
    if not math.isclose(
        primary.writes_served, shadow.writes_served, rel_tol=rtol, abs_tol=rtol
    ):
        mismatches["writes_served"] = {
            "batched": primary.writes_served,
            "exact": shadow.writes_served,
        }
    if not mismatches:
        return
    details = {
        f"{fld}.{side}": value
        for fld, sides in mismatches.items()
        for side, value in sides.items()
    }
    repro = dict(repro or {})
    repro.setdefault("round_window", [0, rounds])
    repro["engines"] = ["fluid-batched", "fluid-exact"]
    raise ShadowDivergence(
        "shadow-audit",
        rounds,
        "batched engine diverged from the exact reference on "
        + ", ".join(sorted(mismatches)),
        details=details,
        repro=repro,
    )
