"""State-integrity verification: invariants, shadow audits, crash dumps.

Three layers of defence against silently corrupted simulator state:

* :mod:`repro.verify.invariants` -- a declarative invariant registry
  evaluated over live engine state at a configurable cadence
  (``paranoia={off,cheap,full}``), raising a structured
  :class:`InvariantViolation` on the first failed predicate;
* :mod:`repro.verify.shadow` -- sampled differential audits re-running
  the batched engine against the exact reference engine and escalating
  divergence as a violation with a pinned repro key;
* :mod:`repro.verify.snapshot` -- ``.repro-debug/`` crash-dump bundles
  written on violation or unexpected worker death, deterministically
  replayable via ``python -m repro.verify replay``.

See ``docs/verification.md`` for the invariant catalog and workflows.
"""

from repro.verify.invariants import (
    CHEAP_CADENCE,
    DEFAULT_INVARIANTS,
    EngineGuard,
    EngineView,
    Invariant,
    InvariantRegistry,
    InvariantViolation,
    PARANOIA_LEVELS,
    REGISTRY,
    normalize_paranoia,
)
from repro.verify.shadow import (
    SHADOW_WRITES_RTOL,
    ShadowDivergence,
    compare_runs,
    should_audit,
)
from repro.verify.snapshot import (
    Bundle,
    ReplayReport,
    list_bundles,
    load_bundle,
    replay,
    static_check,
    suppress_bundles,
    task_context,
    write_error_bundle,
    write_violation_bundle,
)

__all__ = [
    "CHEAP_CADENCE",
    "DEFAULT_INVARIANTS",
    "EngineGuard",
    "EngineView",
    "Invariant",
    "InvariantRegistry",
    "InvariantViolation",
    "PARANOIA_LEVELS",
    "REGISTRY",
    "normalize_paranoia",
    "SHADOW_WRITES_RTOL",
    "ShadowDivergence",
    "compare_runs",
    "should_audit",
    "Bundle",
    "ReplayReport",
    "list_bundles",
    "load_bundle",
    "replay",
    "static_check",
    "suppress_bundles",
    "task_context",
    "write_error_bundle",
    "write_violation_bundle",
]
