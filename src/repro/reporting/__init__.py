"""Experiment report generation.

:func:`~repro.reporting.report.generate_report` reruns the paper's whole
evaluation on a given configuration and renders a single self-contained
Markdown document -- tables, ASCII figures, and paper-vs-measured deltas
-- suitable for committing next to EXPERIMENTS.md or attaching to an
issue.  The ``repro-nvm report`` CLI subcommand wraps it.
"""

from repro.reporting.report import ReportSection, generate_report

__all__ = ["ReportSection", "generate_report"]
