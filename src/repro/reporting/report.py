"""Markdown report generation over the full evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.analysis.lifetime import (
    maxwe_normalized,
    pcd_ps_normalized,
    ps_worst_normalized,
    uaa_fraction,
)
from repro.core.overhead import mapping_overhead_report, paper_overhead_geometry
from repro.sim.config import ExperimentConfig
from repro.sim.experiments import (
    bpa_scheme_comparison,
    spare_fraction_sweep,
    swr_fraction_sweep,
    uaa_scheme_comparison,
)
from repro.util.asciiplot import bar_chart, line_plot
from repro.util.stats import geometric_mean

#: Paper reference values surfaced in the report.
PAPER = {
    "uaa_unprotected": 0.041,
    "maxwe_improvement": 9.5,
    "fig6": {0.0: 0.041, 0.01: 0.14, 0.1: 0.431, 0.2: 0.579, 0.3: 0.741, 0.4: 0.869, 0.5: 0.874},
    "fig8_gmean": {"max-we": 0.474, "pcd-ps": 0.412, "ps-worst": 0.256},
    "overhead_reduction": 0.85,
}


@dataclass(frozen=True)
class ReportSection:
    """One titled block of the report."""

    title: str
    body: str

    def render(self) -> str:
        """Markdown for this section."""
        return f"## {self.title}\n\n{self.body}\n"


def _code(block: str) -> str:
    return f"```\n{block}\n```"


def _closed_forms_section(config: ExperimentConfig) -> ReportSection:
    p, q = config.spare_fraction, config.q
    lines = [
        f"Closed forms at p = {p:.0%}, q = {q:g} (Eq. 5-8):",
        "",
        f"- no protection: **{uaa_fraction(q):.1%}**",
        f"- PS-worst: **{ps_worst_normalized(p, q):.1%}**",
        f"- PCD/PS: **{pcd_ps_normalized(p, q):.1%}**",
        f"- Max-WE: **{maxwe_normalized(p, q):.1%}**",
    ]
    return ReportSection("Analytic lifetimes (Section 4.3)", "\n".join(lines))


def _uaa_section(config: ExperimentConfig) -> ReportSection:
    results = uaa_scheme_comparison(config)
    baseline = results["no-protection"]
    chart = bar_chart(
        {name: result.normalized_lifetime for name, result in results.items()},
        title="normalized lifetime under UAA (10% spares)",
    )
    body = (
        _code(chart)
        + "\n\n"
        + f"Max-WE improvement over no protection: "
        f"**{results['max-we'].improvement_over(baseline):.1f}X** "
        f"(paper: {PAPER['maxwe_improvement']}X)."
    )
    return ReportSection("UAA scheme comparison (Section 5.3.1)", body)


def _fig6_section(config: ExperimentConfig) -> ReportSection:
    sweep = spare_fraction_sweep(config)
    fractions = [fraction for fraction, _ in sweep]
    measured = [result.normalized_lifetime for _, result in sweep]
    paper = [PAPER["fig6"][fraction] for fraction in fractions]
    plot = line_plot(
        fractions,
        {"measured": measured, "paper": paper},
        title="Figure 6: Max-WE lifetime under UAA vs spare capacity",
    )
    return ReportSection("Spare-capacity sweep (Figure 6)", _code(plot))


def _fig7_section(config: ExperimentConfig) -> ReportSection:
    sweeps = swr_fraction_sweep(config)
    fractions = [fraction for fraction, _ in next(iter(sweeps.values()))]
    plot = line_plot(
        fractions,
        {
            name: [result.normalized_lifetime for _, result in series]
            for name, series in sweeps.items()
        },
        title="Figure 7: lifetime under BPA vs SWR share of spares",
    )
    return ReportSection("SWR-share sweep (Figure 7)", _code(plot))


def _fig8_section(config: ExperimentConfig) -> ReportSection:
    comparison = bpa_scheme_comparison(config)
    gmeans = {
        name: geometric_mean([r.normalized_lifetime for r in row.values()])
        for name, row in comparison.items()
    }
    chart = bar_chart(gmeans, title="Figure 8 gmeans under BPA (10% spares, 90% SWRs)")
    deltas = "\n".join(
        f"- {name}: measured **{gmeans[name]:.1%}**, paper "
        f"{PAPER['fig8_gmean'][name]:.1%}"
        for name in gmeans
    )
    return ReportSection("BPA scheme comparison (Figure 8)", _code(chart) + "\n\n" + deltas)


def _sensitivity_section(config: ExperimentConfig) -> ReportSection:
    from repro.sim.sensitivity import sensitivity_analysis

    report = sensitivity_analysis(config)
    lines = ["Lifetime elasticity (% lifetime per % parameter, +10% step):", ""]
    for name, sensitivity in report.items():
        lines.append(
            f"- `{name}`: **{sensitivity.elasticity:+.2f}** "
            f"({sensitivity.base_value:g} -> {sensitivity.perturbed_value:g}: "
            f"{sensitivity.base_lifetime:.1%} -> {sensitivity.perturbed_lifetime:.1%})"
        )
    lines.append(
        "\nSpare capacity is the strong lever; the SWR share is nearly "
        "inelastic (why the paper trades it for mapping-table savings)."
    )
    return ReportSection("Parameter sensitivity (extension)", "\n".join(lines))


def _overhead_section() -> ReportSection:
    report = mapping_overhead_report(paper_overhead_geometry(), 0.1, 0.9)
    lines = [
        f"- Max-WE hybrid mapping: **{report.hybrid_mib:.2f} MB**",
        f"- all-line-level mapping: **{report.line_level_mib:.2f} MB**",
        f"- reduction: **{report.reduction:.1%}** "
        f"(paper: {PAPER['overhead_reduction']:.0%})",
        f"- share of device capacity: **{report.mapping_fraction_of_capacity:.3%}**",
    ]
    return ReportSection("Mapping-table overhead (Section 5.3.2)", "\n".join(lines))


def generate_report(
    config: Optional[ExperimentConfig] = None,
    output_path: "str | Path | None" = None,
) -> str:
    """Run the full evaluation and return (optionally write) the report.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the paper's setup.
    output_path:
        When given, the Markdown is also written there.
    """
    config = config if config is not None else ExperimentConfig()
    sections: List[ReportSection] = [
        _closed_forms_section(config),
        _uaa_section(config),
        _fig6_section(config),
        _fig7_section(config),
        _fig8_section(config),
        _sensitivity_section(config),
        _overhead_section(),
    ]
    header = (
        "# Max-WE reproduction report\n\n"
        f"Configuration: {config.regions} regions x {config.lines_per_region} "
        f"lines, endurance model `{config.endurance_model}` (q = {config.q:g}), "
        f"spares {config.spare_fraction:.0%} / SWRs {config.swr_fraction:.0%}, "
        f"seed {config.seed}.\n"
    )
    document = header + "\n" + "\n".join(section.render() for section in sections)
    if output_path is not None:
        Path(output_path).write_text(document)
    return document
