"""Max-WE: the paper's spare-line replacement scheme (Section 4).

Max-WE ("Maximize the Weak lines' Endurance") combines:

* **weak-priority** spare selection -- the weakest regions become the
  spare space instead of serving users
  (:func:`~repro.core.allocation.plan_allocation`);
* **weak-strong matching** -- the strongest spare regions are permanently
  paired with the weakest remaining (user-facing) regions so every pair's
  combined endurance is balanced and maximized;
* a small pool of **additional spare regions** that dynamically rescue
  wear-out lines outside the paired set;
* **hybrid mapping** -- a region-level table (RMT) for the permanent
  pairs and a line-level table (LMT) for the dynamic rescues, cutting
  mapping storage by 85% versus all-line-level mapping
  (:mod:`repro.core.mapping`, :mod:`repro.core.overhead`).

:class:`~repro.core.maxwe.MaxWE` implements the sparing-scheme interface
used by the lifetime simulator; :class:`~repro.core.controller.MaxWEController`
implements the exact per-request translation datapath of Section 4.2.
"""

from repro.core.allocation import AllocationPlan, plan_allocation
from repro.core.controller import MaxWEController
from repro.core.mapping import LineMappingTable, RegionMappingTable
from repro.core.maxwe import MaxWE
from repro.core.overhead import (
    MappingOverheadReport,
    hybrid_mapping_bits,
    line_level_mapping_bits,
    mapping_overhead_report,
)

__all__ = [
    "AllocationPlan",
    "plan_allocation",
    "MaxWEController",
    "LineMappingTable",
    "RegionMappingTable",
    "MaxWE",
    "MappingOverheadReport",
    "hybrid_mapping_bits",
    "line_level_mapping_bits",
    "mapping_overhead_report",
]
