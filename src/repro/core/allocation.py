"""Spare-region allocation: weak-priority selection and weak-strong matching.

This module turns an endurance map into Max-WE's static allocation plan
(Section 4.1).  With ``R`` regions ranked by ascending endurance, the plan
carves the ranking into four consecutive bands, mirroring the paper's
seven-region example (endurance order 2 < 3 < 5 < 1 < 6 < 0 < 4; SWRs =
{2, 3}, RWRs = {5, 1}, additional spare = {6}, working = {0, 4}):

========================  =====================================================
rank band                 role
========================  =====================================================
``[0, k)``                SWRs -- Spare Weakest Regions (permanent rescuers)
``[k, 2k)``               RWRs -- Remaining Weakest Regions (rescued users)
``[2k, 2k + a)``          additional spare regions (dynamic line-level pool)
``[2k + a, R)``           ordinary working regions
========================  =====================================================

where ``k`` SWR regions and ``a`` additional regions split the spare
budget according to the SWR fraction (the paper picks 90% SWRs after the
Figure 7 sweep).  Weak-strong matching then pairs the *weakest* SWR with
the *strongest* RWR and so on, balancing every pair's combined endurance.

Alternative ``spare_selection`` and ``matching`` policies exist solely for
the ablation benches (ABL-MATCH): they let the benchmarks quantify what
each Max-WE ingredient contributes.

**Ensemble stacking.**  The deterministic paper configuration
(``weak-priority`` + ``weak-strong``) is a pure function of the endurance
map, which is what lets ``repro.core.maxwe.MaxWEStackedState`` rebuild
this plan for ``T`` trials without instantiating ``T`` schemes: a
partition-based ``_stable_rank_prefix`` over each trial's region
endurances reproduces the first ``2*swr + additional`` entries of
``rank_regions`` (both break ties by ascending region id), which is all
the plan consumes, and
because the ranking slices handed to the pairing step are already
ascending, the stable re-sorts below are identity permutations -- so
``swr_paired == ranking[:k]`` and ``rwr_paired == ranking[k:2k][::-1]``
hold exactly.  Any change to the banding or pairing logic here must be
mirrored there (the ensemble differential tests pin the equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.errors import ConfigurationError
from repro.endurance.emap import EnduranceMap
from repro.util.rng import RandomState, derive_rng
from repro.util.validation import require_fraction

#: Valid spare-selection policies.
SPARE_SELECTIONS = ("weak-priority", "random", "strong-priority")

#: Valid SWR-to-RWR matching policies.
MATCHINGS = ("weak-strong", "identity", "random")


@dataclass(frozen=True)
class AllocationPlan:
    """Max-WE's static region allocation.

    Attributes
    ----------
    swr_regions:
        Region ids of the Spare Weakest Regions.
    rwr_regions:
        Region ids of the Remaining Weakest Regions, index-aligned with
        ``swr_regions``: ``swr_regions[i]`` permanently rescues
        ``rwr_regions[i]``.
    additional_regions:
        Region ids of the dynamic (line-level) spare pool.
    working_regions:
        All user-facing regions (RWRs plus ordinary regions), ascending id.
    """

    swr_regions: np.ndarray
    rwr_regions: np.ndarray
    additional_regions: np.ndarray
    working_regions: np.ndarray

    def __post_init__(self) -> None:
        for name in ("swr_regions", "rwr_regions", "additional_regions", "working_regions"):
            array = np.asarray(getattr(self, name), dtype=np.intp)
            object.__setattr__(self, name, array)
        if self.swr_regions.size != self.rwr_regions.size:
            raise ConfigurationError(
                f"SWR count {self.swr_regions.size} != RWR count {self.rwr_regions.size}"
            )
        all_ids = np.concatenate(
            [self.swr_regions, self.additional_regions, self.working_regions]
        )
        if np.unique(all_ids).size != all_ids.size:
            raise ConfigurationError("allocation plan assigns a region to two roles")

    @property
    def spare_region_count(self) -> int:
        """Total spare regions (SWRs + additional)."""
        return int(self.swr_regions.size + self.additional_regions.size)

    def partner_of_rwr(self, rwr_region: int) -> int:
        """The SWR region permanently rescuing ``rwr_region``."""
        matches = np.flatnonzero(self.rwr_regions == rwr_region)
        if matches.size != 1:
            raise KeyError(f"region {rwr_region} is not an RWR")
        return int(self.swr_regions[matches[0]])

    def is_rwr(self, region: int) -> bool:
        """Whether ``region`` is in the rescued (RWR) set."""
        return bool(np.isin(region, self.rwr_regions))


def plan_allocation(
    emap: EnduranceMap,
    spare_fraction: float,
    swr_fraction: float = 0.9,
    *,
    spare_selection: str = "weak-priority",
    matching: str = "weak-strong",
    region_metric: str = "min",
    rng: RandomState = None,
) -> AllocationPlan:
    """Build Max-WE's allocation plan for an endurance map.

    Parameters
    ----------
    emap:
        Device endurance map (fixes the region count and ranking).
    spare_fraction:
        Fraction ``p`` of regions reserved as spare space.
    swr_fraction:
        Fraction of the spare space used as permanent SWRs (the paper's
        90% operating point); the remainder is the dynamic pool.
    spare_selection / matching:
        Ablation knobs; the paper's scheme is
        ``("weak-priority", "weak-strong")``.
    region_metric:
        How a region's endurance is summarized (see
        :meth:`EnduranceMap.region_endurance`).
    rng:
        Randomness for the ``"random"`` ablation policies only.
    """
    require_fraction(spare_fraction, "spare_fraction")
    require_fraction(swr_fraction, "swr_fraction")
    if spare_selection not in SPARE_SELECTIONS:
        raise ConfigurationError(
            f"spare_selection must be one of {SPARE_SELECTIONS}, got {spare_selection!r}"
        )
    if matching not in MATCHINGS:
        raise ConfigurationError(f"matching must be one of {MATCHINGS}, got {matching!r}")

    regions = emap.regions
    spare_count = int(round(spare_fraction * regions))
    swr_count = int(round(swr_fraction * spare_count))
    additional_count = spare_count - swr_count
    if 2 * swr_count + additional_count > regions:
        raise ConfigurationError(
            f"{swr_count} SWRs need as many RWRs plus {additional_count} additional "
            f"regions, exceeding the {regions} available"
        )

    ranking = emap.rank_regions(region_metric)  # ascending endurance
    region_endurance = emap.region_endurance(region_metric)
    generator = derive_rng(rng, "allocation") if (
        spare_selection == "random" or matching == "random"
    ) else None

    if spare_selection == "weak-priority":
        swr = ranking[:swr_count]
        rwr = ranking[swr_count : 2 * swr_count]
        additional = ranking[2 * swr_count : 2 * swr_count + additional_count]
    elif spare_selection == "strong-priority":
        # Ablation: waste the strongest regions as spares; the weakest
        # regions (still the likeliest to die) become the rescued set.
        swr = ranking[regions - swr_count :]
        additional = ranking[regions - swr_count - additional_count : regions - swr_count]
        rwr = ranking[:swr_count]
    else:  # random
        assert generator is not None
        chosen = generator.choice(regions, size=spare_count, replace=False)
        chosen_sorted = chosen[np.argsort(region_endurance[chosen], kind="stable")]
        swr = chosen_sorted[:swr_count]
        additional = chosen_sorted[swr_count:]
        remaining = ranking[~np.isin(ranking, chosen)]
        rwr = remaining[:swr_count]

    # Pair SWRs and RWRs.  ``ranking`` slices are ascending by endurance.
    swr_ascending = swr[np.argsort(region_endurance[swr], kind="stable")]
    rwr_ascending = rwr[np.argsort(region_endurance[rwr], kind="stable")]
    if matching == "weak-strong":
        # Weakest SWR rescues the strongest RWR (the paper's matching).
        swr_paired = swr_ascending
        rwr_paired = rwr_ascending[::-1]
    elif matching == "identity":
        # Ablation: weakest with weakest -- the weakest pair stays weak.
        swr_paired = swr_ascending
        rwr_paired = rwr_ascending
    else:  # random
        assert generator is not None
        swr_paired = swr_ascending
        rwr_paired = generator.permutation(rwr_ascending)

    spare_ids = set(int(region) for region in swr) | set(
        int(region) for region in additional
    )
    working = np.array(
        [region for region in range(regions) if region not in spare_ids], dtype=np.intp
    )
    return AllocationPlan(
        swr_regions=swr_paired,
        rwr_regions=rwr_paired,
        additional_regions=np.asarray(additional, dtype=np.intp),
        working_regions=working,
    )
