"""Hybrid spare-line mapping: the RMT and LMT of Section 4.1/4.4.

Max-WE records its allocation in two tables, both held in SRAM for fast
translation:

* :class:`RegionMappingTable` (RMT) -- coarse, *permanent* region-level
  pairs (pra -> sra).  Lines within a pair are matched by their intra-
  region offset ("paired according to the address sequences"), so an entry
  stores only region ids plus one wear-out tag per line of the pair
  indicating whether that line has failed over to its spare.
* :class:`LineMappingTable` (LMT) -- fine, *dynamic* line-level entries
  (pla -> sla) for wear-out lines outside the RWRs, rescued from the
  additional spare regions.

Storage accounting follows Section 4.4.  For ``N`` lines, ``R`` regions,
``S`` spare lines of which fraction ``q`` is region-mapped:

* RMT: ``(q * S * R * log2 R) / N`` bits (one region address per SWR
  region; the rescued region is implied by rank order) plus ``q * S``
  wear-out tag bits (counted separately, as in Section 5.3.2);
* LMT: ``(1 - q) * S * log2 N`` bits (one line address per dynamic spare
  line; the table is content-addressed by spare index).

Both tables also report an ``exact_storage_bits`` that counts every field
a naive SRAM layout would hold (both addresses per entry), for honest
comparison against the paper's accounting.

**Ensemble stacking.**  Neither table feeds back into replacement
*decisions*: :meth:`MaxWE.replace_batch` consults only its SRA lookup and
per-slot state codes, with the RMT worn tags and LMT entries written as a
ledger for address translation and the integrity checks.  The trial-
stacked ``MaxWEStackedState`` therefore skips maintaining them entirely
(the LMT capacity equals the pool size, so its overflow check can never
fire before pool exhaustion truncates the batch) -- which is also why the
ensemble engine refuses the stacked path when paranoia guards are on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.device.errors import ConfigurationError
from repro.util.units import bits_required
from repro.util.validation import require_positive_int


class RegionMappingTable:
    """Permanent region-level mapping between RWRs and their SWRs.

    Parameters
    ----------
    pairs:
        Iterable of ``(pra, sra)`` region-id pairs: physical (rescued) RWR
        region -> spare SWR region.
    lines_per_region:
        Lines per region; fixes the wear-out tag vector length.
    total_regions:
        Region count ``R`` (for address-width accounting).
    """

    def __init__(
        self,
        pairs: Iterable[Tuple[int, int]],
        lines_per_region: int,
        total_regions: int,
    ) -> None:
        require_positive_int(lines_per_region, "lines_per_region")
        require_positive_int(total_regions, "total_regions")
        self._lines_per_region = lines_per_region
        self._total_regions = total_regions
        self._sra_of: Dict[int, int] = {}
        for pra, sra in pairs:
            if not 0 <= pra < total_regions or not 0 <= sra < total_regions:
                raise ConfigurationError(f"region pair ({pra}, {sra}) out of range")
            if pra in self._sra_of:
                raise ConfigurationError(f"region {pra} mapped twice in RMT")
            self._sra_of[pra] = sra
        # Wear-out tags as one dense matrix (row per mapped region) so the
        # batched engine can set many tags in one vectorized store.
        self._row_of = np.full(total_regions, -1, dtype=np.intp)
        for row, pra in enumerate(self._sra_of):
            self._row_of[pra] = row
        self._worn = np.zeros((len(self._sra_of), lines_per_region), dtype=bool)

    def __len__(self) -> int:
        return len(self._sra_of)

    def __contains__(self, pra: int) -> bool:
        return pra in self._sra_of

    def spare_region_of(self, pra: int) -> Optional[int]:
        """SWR region rescuing ``pra``, or ``None`` if not region-mapped."""
        return self._sra_of.get(pra)

    def is_worn(self, pra: int, offset: int) -> bool:
        """Wear-out tag: has line ``offset`` of region ``pra`` failed over?"""
        self._check(pra, offset)
        return bool(self._worn[self._row_of[pra], offset])

    def mark_worn(self, pra: int, offset: int) -> None:
        """Set the wear-out tag after a replacement (Section 4.2)."""
        self._check(pra, offset)
        if self._worn[self._row_of[pra], offset]:
            raise ConfigurationError(
                f"line {offset} of region {pra} already marked worn out"
            )
        self._worn[self._row_of[pra], offset] = True

    def mark_worn_many(self, pras: np.ndarray, offsets: np.ndarray) -> None:
        """Vectorized :meth:`mark_worn` for a batch of failovers."""
        pras = np.asarray(pras, dtype=np.intp)
        offsets = np.asarray(offsets, dtype=np.intp)
        if pras.size == 0:
            return
        if np.any(pras < 0) or np.any(pras >= self._total_regions):
            raise KeyError("a region in the batch is not in the RMT")
        rows = self._row_of[pras]
        if np.any(rows < 0):
            raise KeyError("a region in the batch is not in the RMT")
        if np.any(offsets < 0) or np.any(offsets >= self._lines_per_region):
            raise ConfigurationError(
                f"an offset in the batch is out of range [0, {self._lines_per_region})"
            )
        if np.any(self._worn[rows, offsets]):
            raise ConfigurationError("a line in the batch is already marked worn out")
        self._worn[rows, offsets] = True

    def are_worn(self, pras: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_worn` (read-only batch gather of tags)."""
        pras = np.asarray(pras, dtype=np.intp)
        offsets = np.asarray(offsets, dtype=np.intp)
        if pras.size == 0:
            return np.zeros(0, dtype=bool)
        if np.any(pras < 0) or np.any(pras >= self._total_regions):
            raise KeyError("a region in the batch is not in the RMT")
        rows = self._row_of[pras]
        if np.any(rows < 0):
            raise KeyError("a region in the batch is not in the RMT")
        if np.any(offsets < 0) or np.any(offsets >= self._lines_per_region):
            raise ConfigurationError(
                f"an offset in the batch is out of range [0, {self._lines_per_region})"
            )
        return self._worn[rows, offsets]

    def worn_count(self, pra: int | None = None) -> int:
        """Number of failed-over lines (in one region or overall)."""
        if pra is not None:
            self._check(pra, 0)
            return int(self._worn[self._row_of[pra]].sum())
        return int(self._worn.sum())

    def _check(self, pra: int, offset: int) -> None:
        if pra not in self._sra_of:
            raise KeyError(f"region {pra} is not in the RMT")
        if not 0 <= offset < self._lines_per_region:
            raise ConfigurationError(
                f"offset {offset} out of range [0, {self._lines_per_region})"
            )

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    @property
    def entry_bits(self) -> int:
        """Paper accounting: one region address per entry."""
        return bits_required(self._total_regions)

    def storage_bits(self) -> int:
        """RMT storage per Section 4.4 (region addresses only)."""
        return len(self._sra_of) * self.entry_bits

    def wear_out_tag_bits(self) -> int:
        """One tag bit per SWR line (counted separately in Section 5.3.2)."""
        return len(self._sra_of) * self._lines_per_region

    def exact_storage_bits(self) -> int:
        """Naive layout: both region addresses plus the tag bits."""
        return (
            len(self._sra_of) * 2 * self.entry_bits + self.wear_out_tag_bits()
        )


class LineMappingTable:
    """Dynamic line-level mapping for rescues outside the RWRs.

    Parameters
    ----------
    capacity:
        Maximum entries -- the number of additional spare lines.
    total_lines:
        Line count ``N`` (for address-width accounting).
    """

    def __init__(self, capacity: int, total_lines: int) -> None:
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        require_positive_int(total_lines, "total_lines")
        self._capacity = capacity
        self._total_lines = total_lines
        self._sla_of: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._sla_of)

    def __contains__(self, pla: int) -> bool:
        return pla in self._sla_of

    @property
    def capacity(self) -> int:
        """Maximum number of entries."""
        return self._capacity

    def lookup(self, pla: int) -> Optional[int]:
        """Spare line replacing ``pla``, or ``None``."""
        return self._sla_of.get(pla)

    def items(self) -> Iterable[Tuple[int, int]]:
        """Read-only view of the live ``(pla, sla)`` entries."""
        return self._sla_of.items()

    def insert(self, pla: int, sla: int) -> None:
        """Record that ``pla`` is now served by spare line ``sla``.

        Re-rescue is allowed (Section 4.2: "If ala is in the LMT, we
        remove the old entry from LMT before adding a new one"), so an
        existing entry for ``pla`` is replaced rather than rejected.
        """
        if not 0 <= pla < self._total_lines or not 0 <= sla < self._total_lines:
            raise ConfigurationError(f"line pair ({pla}, {sla}) out of range")
        if pla not in self._sla_of and len(self._sla_of) >= self._capacity:
            raise ConfigurationError("LMT is full; no additional spare lines remain")
        self._sla_of[pla] = sla

    def insert_many(self, plas: np.ndarray, slas: np.ndarray) -> None:
        """Vectorized :meth:`insert` for a batch of rescues.

        Batch semantics match a loop of scalar inserts: re-rescued lines
        overwrite their old entry, and the capacity check counts only the
        genuinely new keys.
        """
        plas = np.asarray(plas, dtype=np.intp)
        slas = np.asarray(slas, dtype=np.intp)
        if plas.size == 0:
            return
        if (
            np.any(plas < 0)
            or np.any(plas >= self._total_lines)
            or np.any(slas < 0)
            or np.any(slas >= self._total_lines)
        ):
            raise ConfigurationError("a line pair in the batch is out of range")
        new_keys = set(map(int, plas)) - self._sla_of.keys()
        if len(self._sla_of) + len(new_keys) > self._capacity:
            raise ConfigurationError("LMT is full; no additional spare lines remain")
        self._sla_of.update(zip(map(int, plas), map(int, slas)))

    def remove(self, pla: int) -> None:
        """Drop the entry for ``pla``."""
        if pla not in self._sla_of:
            raise KeyError(f"line {pla} is not in the LMT")
        del self._sla_of[pla]

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    @property
    def entry_bits(self) -> int:
        """Paper accounting: one line address per entry."""
        return bits_required(self._total_lines)

    def storage_bits(self) -> int:
        """LMT storage per Section 4.4, sized for full capacity."""
        return self._capacity * self.entry_bits

    def exact_storage_bits(self) -> int:
        """Naive layout: both line addresses per entry."""
        return self._capacity * 2 * self.entry_bits
