"""Closed-form mapping-table overhead (Sections 4.4 and 5.3.2).

For ``N`` lines, ``R`` regions, ``S = p * N`` spare lines of which
fraction ``q`` is region-mapped (SWRs):

* line-level LMT part: ``(1 - q) * S * log2(N)`` bits,
* region-level RMT part: ``(q * S * R * log2(R)) / N`` bits,
* wear-out tags: ``q * S`` bits,
* traditional all-line-level mapping: ``S * log2(N)`` bits.

The paper's 1 GB / 2048-region example with ``p = 10%``, ``q = 90%``
yields about 0.16 MB for Max-WE versus about 1.1 MB for all-line-level
mapping -- an 85% reduction.  (Back-solving those absolute numbers fixes
the paper's line size at 256 B, i.e. ``N = 2^22``; see EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.geometry import DeviceGeometry
from repro.util.units import bits_to_mib, bits_required
from repro.util.validation import require_fraction

#: Line size that reproduces the paper's absolute megabyte figures.
PAPER_OVERHEAD_LINE_BYTES: int = 256


def line_level_mapping_bits(total_lines: int, spare_lines: int) -> int:
    """Traditional all-line-level mapping: ``S * log2 N`` bits."""
    if spare_lines < 0 or spare_lines > total_lines:
        raise ValueError(f"spare_lines {spare_lines} out of range [0, {total_lines}]")
    return spare_lines * bits_required(total_lines)


def lmt_bits(total_lines: int, spare_lines: int, swr_fraction: float) -> int:
    """LMT part of the hybrid: ``(1 - q) * S * log2 N`` bits."""
    require_fraction(swr_fraction, "swr_fraction")
    dynamic_lines = round((1.0 - swr_fraction) * spare_lines)
    return dynamic_lines * bits_required(total_lines)


def rmt_bits(
    total_lines: int, regions: int, spare_lines: int, swr_fraction: float
) -> int:
    """RMT part of the hybrid: ``(q * S * R * log2 R) / N`` bits.

    ``q * S * R / N`` is the SWR *region* count; each entry stores one
    region address.
    """
    require_fraction(swr_fraction, "swr_fraction")
    swr_regions = round(swr_fraction * spare_lines * regions / total_lines)
    return swr_regions * bits_required(regions)


def wear_out_tag_bits(spare_lines: int, swr_fraction: float) -> int:
    """One wear-out tag bit per SWR line: ``q * S`` bits."""
    require_fraction(swr_fraction, "swr_fraction")
    return round(swr_fraction * spare_lines)


def hybrid_mapping_bits(
    total_lines: int,
    regions: int,
    spare_lines: int,
    swr_fraction: float,
    *,
    include_tags: bool = True,
) -> int:
    """Total Max-WE mapping storage in bits."""
    total = lmt_bits(total_lines, spare_lines, swr_fraction) + rmt_bits(
        total_lines, regions, spare_lines, swr_fraction
    )
    if include_tags:
        total += wear_out_tag_bits(spare_lines, swr_fraction)
    return total


@dataclass(frozen=True)
class MappingOverheadReport:
    """Side-by-side overhead comparison for one device configuration."""

    geometry: DeviceGeometry
    spare_fraction: float
    swr_fraction: float
    lmt_bits: int
    rmt_bits: int
    tag_bits: int
    line_level_bits: int

    @property
    def hybrid_bits(self) -> int:
        """Total Max-WE bits (LMT + RMT + tags)."""
        return self.lmt_bits + self.rmt_bits + self.tag_bits

    @property
    def hybrid_mib(self) -> float:
        """Max-WE storage in MiB."""
        return bits_to_mib(self.hybrid_bits)

    @property
    def line_level_mib(self) -> float:
        """All-line-level storage in MiB."""
        return bits_to_mib(self.line_level_bits)

    @property
    def reduction(self) -> float:
        """Fractional saving versus all-line-level mapping (the paper's 85%)."""
        return 1.0 - self.hybrid_bits / self.line_level_bits

    @property
    def mapping_fraction_of_capacity(self) -> float:
        """Mapping storage over device capacity (the abstract's 0.016%)."""
        return self.hybrid_bits / 8.0 / self.geometry.capacity_bytes


def mapping_overhead_report(
    geometry: DeviceGeometry,
    spare_fraction: float = 0.1,
    swr_fraction: float = 0.9,
) -> MappingOverheadReport:
    """Compute the Section 5.3.2 overhead comparison for a device."""
    require_fraction(spare_fraction, "spare_fraction")
    require_fraction(swr_fraction, "swr_fraction")
    total = geometry.total_lines
    spare = round(spare_fraction * total)
    return MappingOverheadReport(
        geometry=geometry,
        spare_fraction=spare_fraction,
        swr_fraction=swr_fraction,
        lmt_bits=lmt_bits(total, spare, swr_fraction),
        rmt_bits=rmt_bits(total, geometry.regions, spare, swr_fraction),
        tag_bits=wear_out_tag_bits(spare, swr_fraction),
        line_level_bits=line_level_mapping_bits(total, spare),
    )


def paper_overhead_geometry() -> DeviceGeometry:
    """The geometry that reproduces the paper's 0.16 MB / 1.1 MB figures."""
    from repro.device.geometry import PAPER_CAPACITY_BYTES, PAPER_REGIONS

    return DeviceGeometry(
        total_lines=PAPER_CAPACITY_BYTES // PAPER_OVERHEAD_LINE_BYTES,
        regions=PAPER_REGIONS,
        line_bytes=PAPER_OVERHEAD_LINE_BYTES,
    )
