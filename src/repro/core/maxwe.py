"""Max-WE as a spare-line replacement scheme (Sections 4.1-4.2).

:class:`MaxWE` plugs into the lifetime simulator through the
:class:`~repro.sparing.base.SpareScheme` interface and implements the
paper's replacement procedure:

* a wear-out in an **RWR** line fails over to its permanently matched SWR
  line (same intra-region offset), setting the RMT wear-out tag;
* a wear-out anywhere else is rescued by the **strongest remaining line of
  the additional spare regions**, recorded in the LMT; a rescued line may
  be re-rescued (the old LMT entry is dropped first);
* a wear-out of an SWR line already serving as a replacement falls
  through to the additional pool (the Section 4.2 "otherwise" branch; see
  the ``rwr_fallback_to_lmt`` parameter), and the device is worn out when
  a rescue finds the additional pool empty.

Slot bookkeeping is held in flat numpy arrays (state code and original
line per slot, allocation-ordered pool with a cursor) so that
:meth:`MaxWE.replace_batch` can decide every death of a chronological
batch with array operations: SWR failovers are a single gather over the
pre-computed region pairing, and pool rescues are one slice of the
pre-sorted spare ranking.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.allocation import AllocationPlan, plan_allocation
from repro.core.mapping import LineMappingTable, RegionMappingTable
from repro.device.errors import ConfigurationError
from repro.endurance.emap import EnduranceMap
from repro.sparing.base import (
    BATCH_FAIL,
    BATCH_REPLACE,
    BatchedSchemeState,
    BatchOutcome,
    FailDevice,
    RawBatchOutcome,
    Replacement,
    ReplaceWith,
    SchemeIntegrityError,
    SpareScheme,
)
from repro.util.sorting import stable_value_argsort
from repro.util.validation import require_fraction

#: Slot backing states (array codes).
_ORIGINAL = 0
_SWR_REPLACED = 1
_LMT_REPLACED = 2
#: Terminal code for the slot whose unservable death ended the device:
#: its mapping (if any) is dropped, so the LMT and the state ledger stay
#: consistent for the post-failure integrity sweep.
_RETIRED = 3

#: Failure reason when the dynamic pool runs dry (Section 4.2).
_POOL_EXHAUSTED = "additional spare regions exhausted (Section 4.2 failure)"


class MaxWE(SpareScheme):
    """The paper's spare-line replacement scheme.

    Parameters
    ----------
    spare_fraction:
        Fraction ``p`` of capacity reserved as spare space (the paper
        settles on 10% after the Figure 6 sweep).
    swr_fraction:
        Fraction ``q`` of the spare space used as permanent SWRs (90%
        after the Figure 7 sweep).
    spare_selection / matching:
        Ablation knobs forwarded to
        :func:`~repro.core.allocation.plan_allocation`; the paper's scheme
        is ``("weak-priority", "weak-strong")``.
    rwr_fallback_to_lmt:
        When an RWR's dedicated SWR line dies, rescue it from the dynamic
        pool instead of failing the device.  On by default: in the
        Section 4.2 algorithm a dead SWR line's region is *not* among the
        RMT's ``pra`` entries, so its replacement falls through to the
        "otherwise" (additional-spare) branch.  Disable for the strictest
        reading in which region-mapped slots get exactly one rescue.
    region_metric:
        Region endurance summary used for ranking.
    """

    name = "max-we"

    #: Max-WE never retires a slot: every death is answered by an SWR
    #: failover, a pool rescue, or device failure.
    ensemble_never_removes = True

    def __init__(
        self,
        spare_fraction: float = 0.1,
        swr_fraction: float = 0.9,
        *,
        spare_selection: str = "weak-priority",
        matching: str = "weak-strong",
        rwr_fallback_to_lmt: bool = True,
        region_metric: str = "min",
    ) -> None:
        require_fraction(spare_fraction, "spare_fraction")
        require_fraction(swr_fraction, "swr_fraction")
        super().__init__(spare_fraction=spare_fraction)
        self._swr_fraction = swr_fraction
        self._spare_selection = spare_selection
        self._matching = matching
        self._rwr_fallback = rwr_fallback_to_lmt
        self._region_metric = region_metric
        self._plan: AllocationPlan | None = None
        self._rmt: RegionMappingTable | None = None
        self._lmt: LineMappingTable | None = None
        self._pool_lines: np.ndarray = np.empty(0, dtype=np.intp)
        self._pool_floor: np.ndarray = np.empty(0, dtype=float)
        self._pool_pos: int = 0
        self._state: np.ndarray = np.empty(0, dtype=np.int8)
        self._original_line: np.ndarray = np.empty(0, dtype=np.intp)
        self._sra_lookup: np.ndarray = np.empty(0, dtype=np.intp)
        self._rwr_originals_left: int = 0
        self._swr_line_floor: float = math.inf

    # ------------------------------------------------------------------
    # Configuration introspection
    # ------------------------------------------------------------------

    @property
    def swr_fraction(self) -> float:
        """Configured SWR share ``q`` of the spare space."""
        return self._swr_fraction

    @property
    def plan(self) -> AllocationPlan:
        """The static allocation plan (after :meth:`initialize`)."""
        self._require_initialized()
        assert self._plan is not None
        return self._plan

    @property
    def rmt(self) -> RegionMappingTable:
        """The region mapping table."""
        self._require_initialized()
        assert self._rmt is not None
        return self._rmt

    @property
    def lmt(self) -> LineMappingTable:
        """The line mapping table."""
        self._require_initialized()
        assert self._lmt is not None
        return self._lmt

    @property
    def pool_remaining(self) -> int:
        """Additional spare lines not yet handed out."""
        self._require_initialized()
        return int(self._pool_lines.size - self._pool_pos)

    def spare_lines(self, total_lines: int) -> int:
        """Spare line count; region-rounded so roles align with regions."""
        self._require_initialized()
        assert self._plan is not None
        assert self._emap is not None
        return self._plan.spare_region_count * self._emap.lines_per_region

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None and self._rng is not None
        emap = self._emap
        self._plan = plan_allocation(
            emap,
            self.spare_fraction,
            self._swr_fraction,
            spare_selection=self._spare_selection,
            matching=self._matching,
            region_metric=self._region_metric,
            rng=self._rng,
        )
        per = emap.lines_per_region
        offsets = np.arange(per, dtype=np.intp)

        self._rmt = RegionMappingTable(
            pairs=zip(
                (int(region) for region in self._plan.rwr_regions),
                (int(region) for region in self._plan.swr_regions),
            ),
            lines_per_region=per,
            total_regions=emap.regions,
        )
        self._sra_lookup = np.full(emap.regions, -1, dtype=np.intp)
        self._sra_lookup[self._plan.rwr_regions] = self._plan.swr_regions

        # Additional pool: every line of the additional spare regions,
        # strongest first (Section 4.2's allocation order); consumed via a
        # cursor.  The suffix minimum is the batching safety bound.
        endurance = emap.line_endurance
        pool_lines = (
            self._plan.additional_regions[:, None] * per + offsets[None, :]
        ).ravel()
        order = np.argsort(-endurance[pool_lines], kind="stable")
        self._pool_lines = pool_lines[order]
        if self._pool_lines.size:
            self._pool_floor = np.minimum.accumulate(
                endurance[self._pool_lines][::-1]
            )[::-1]
        else:
            self._pool_floor = np.empty(0, dtype=float)
        self._pool_pos = 0
        self._lmt = LineMappingTable(
            capacity=int(self._pool_lines.size), total_lines=emap.lines
        )

        backing = (
            self._plan.working_regions[:, None] * per + offsets[None, :]
        ).ravel()
        self._state = np.full(backing.size, _ORIGINAL, dtype=np.int8)
        self._original_line = backing.copy()
        self._rwr_originals_left = int(self._plan.rwr_regions.size) * per
        swr_lines = (
            self._plan.swr_regions[:, None] * per + offsets[None, :]
        ).ravel()
        self._swr_line_floor = (
            float(endurance[swr_lines].min()) if swr_lines.size else math.inf
        )
        return backing

    @property
    def min_user_slots(self) -> int:
        """Max-WE never retires slots; every working line stays addressable."""
        return self.slots

    # ------------------------------------------------------------------
    # Replacement (Section 4.2)
    # ------------------------------------------------------------------

    def replace(self, slot: int, dead_line: int) -> Replacement:
        self._require_initialized()
        assert self._plan is not None and self._rmt is not None and self._lmt is not None
        assert self._emap is not None
        if not 0 <= slot < self._state.size:
            raise KeyError(f"unknown slot {slot}")
        state = int(self._state[slot])
        per = self._emap.lines_per_region

        if state == _ORIGINAL:
            region = dead_line // per
            offset = dead_line % per
            spare_region = int(self._sra_lookup[region])
            if spare_region >= 0:
                # RWR line: fail over to the matched SWR line.
                self._rmt.mark_worn(region, offset)
                replacement = spare_region * per + offset
                self._state[slot] = _SWR_REPLACED
                self._rwr_originals_left -= 1
                return ReplaceWith(line=replacement)
            return self._rescue_from_pool(slot, int(self._original_line[slot]))

        if state == _LMT_REPLACED:
            # Re-rescue: drop the stale entry, allocate a fresh spare line.
            original = int(self._original_line[slot])
            if original in self._lmt:
                self._lmt.remove(original)
            return self._rescue_from_pool(slot, original)

        # state == _SWR_REPLACED: the dedicated spare line died.
        if self._rwr_fallback:
            return self._rescue_from_pool(slot, int(self._original_line[slot]))
        return FailDevice(
            reason=(
                f"SWR replacement line {dead_line} worn out; region-mapped slots "
                "have no further rescue"
            )
        )

    def _rescue_from_pool(self, slot: int, original_line: int) -> Replacement:
        assert self._lmt is not None
        if self._pool_pos >= self._pool_lines.size:
            # The slot's previous LMT entry (if it had one) was already
            # dropped by the re-rescue path; leaving the state code at
            # _LMT_REPLACED would desynchronize the LMT from the state
            # ledger exactly when the final integrity sweep runs.
            self._state[slot] = _RETIRED
            return FailDevice(reason=_POOL_EXHAUSTED)
        spare = int(self._pool_lines[self._pool_pos])
        self._pool_pos += 1
        self._lmt.insert(original_line, spare)
        self._state[slot] = _LMT_REPLACED
        return ReplaceWith(line=spare)

    def replace_batch(
        self, slots: Sequence[int], dead_lines: Sequence[int]
    ) -> BatchOutcome:
        """Vectorized Section 4.2 procedure for a chronological batch.

        Every death resolves to one of two replacement sources -- the
        matched SWR line (a pure index computation) or the next lines of
        the pre-sorted additional pool (one slice) -- so the whole batch
        is decided without per-death Python work.  A strict-mode SWR
        failure or pool exhaustion truncates the batch at the first
        unservable death, exactly as the scalar loop would.
        """
        self._require_initialized()
        assert self._rmt is not None and self._lmt is not None
        assert self._emap is not None
        per = self._emap.lines_per_region
        slots = np.asarray(slots, dtype=np.intp)
        dead_lines = np.asarray(dead_lines, dtype=np.intp)
        if np.any(slots < 0) or np.any(slots >= self._state.size):
            raise KeyError("unknown slot in batch")

        states = self._state[slots]
        regions = dead_lines // per
        offsets = dead_lines - regions * per
        sra = self._sra_lookup[regions]
        swr_mask = (states == _ORIGINAL) & (sra >= 0)

        fail_reason: Optional[str] = None
        count = slots.size
        if not self._rwr_fallback:
            strict = np.flatnonzero(states == _SWR_REPLACED)
            if strict.size:
                # The first strict-mode SWR death ends the device; deaths
                # before it are still served.
                count = int(strict[0]) + 1
                fail_reason = (
                    f"SWR replacement line {int(dead_lines[strict[0]])} worn out; "
                    "region-mapped slots have no further rescue"
                )

        rescue_mask = ~swr_mask
        rescue_mask[count:] = False
        if fail_reason is not None:
            rescue_mask[count - 1] = False
        rescue_positions = np.flatnonzero(rescue_mask)
        available = self._pool_lines.size - self._pool_pos
        if rescue_positions.size > available:
            # Pool exhaustion preempts any later strict-mode failure.
            count = int(rescue_positions[available]) + 1
            fail_reason = _POOL_EXHAUSTED
            rescue_positions = rescue_positions[:available]

        slots = slots[:count]
        swr_mask = swr_mask[:count]
        actions = np.full(count, BATCH_REPLACE, dtype=np.int8)
        lines = np.full(count, -1, dtype=np.intp)
        if fail_reason is not None:
            actions[count - 1] = BATCH_FAIL

        swr_positions = np.flatnonzero(swr_mask)
        if swr_positions.size:
            self._rmt.mark_worn_many(regions[swr_positions], offsets[swr_positions])
            lines[swr_positions] = sra[swr_positions] * per + offsets[swr_positions]
            self._state[slots[swr_positions]] = _SWR_REPLACED
            self._rwr_originals_left -= int(swr_positions.size)

        if rescue_positions.size:
            taken = self._pool_lines[
                self._pool_pos : self._pool_pos + rescue_positions.size
            ]
            self._pool_pos += int(rescue_positions.size)
            lines[rescue_positions] = taken
            rescued_slots = slots[rescue_positions]
            self._lmt.insert_many(self._original_line[rescued_slots], taken)
            self._state[rescued_slots] = _LMT_REPLACED

        if fail_reason is not None:
            # Retire the slot whose death could not be served, dropping
            # its live LMT entry (a re-death of a rescued slot would
            # otherwise leave a stale entry pointing at the dead spare).
            failing_slot = int(slots[count - 1])
            if self._state[failing_slot] == _LMT_REPLACED:
                original = int(self._original_line[failing_slot])
                if original in self._lmt:
                    self._lmt.remove(original)
            self._state[failing_slot] = _RETIRED

        return BatchOutcome(actions=actions, lines=lines, fail_reason=fail_reason)

    def replacement_extra_floor(self) -> float:
        """Safety bound: the weakest line any future rescue could hand out.

        Two replacement sources exist -- the not-yet-allocated suffix of
        the additional pool (exact suffix minimum) and, while any RWR slot
        still awaits its permanent failover, the SWR lines (static
        minimum).  The bound tightens as both sources drain.
        """
        self._require_initialized()
        floor = math.inf
        if self._pool_pos < self._pool_lines.size:
            floor = float(self._pool_floor[self._pool_pos])
        if self._rwr_originals_left > 0:
            floor = min(floor, self._swr_line_floor)
        return floor

    # ------------------------------------------------------------------
    # Integrity introspection
    # ------------------------------------------------------------------

    def pool_accounting(self) -> dict:
        """Additional-pool counters for the accounting invariant."""
        self._require_initialized()
        assert self._lmt is not None
        size = int(self._pool_lines.size)
        allocated = int(self._pool_pos)
        return {
            "size": size,
            "free": size - allocated,
            "allocated": allocated,
            "lmt_entries": len(self._lmt),
            "lmt_capacity": self._lmt.capacity,
            "rescued_slots": int((self._state == _LMT_REPLACED).sum()),
        }

    def check_integrity(
        self,
        backing: Optional[np.ndarray] = None,
        dead_lines: Optional[np.ndarray] = None,
    ) -> None:
        """Full RMT/LMT/pool cross-check (the ``mapping-consistency``
        invariant's scheme half).

        Verifies pool-cursor bounds, the worn-tag count against the
        failover ledger, LMT bijectivity (every rescued slot has exactly
        one live entry, spare lines are handed out once), and -- when the
        engine's live state is supplied -- that every slot's backing line
        is exactly what its state code and table entry say it must be,
        that no live table entry points at a dead line, and that no dead
        line sits in the unallocated pool suffix.
        """
        super().check_integrity(backing=backing, dead_lines=dead_lines)
        assert self._plan is not None and self._rmt is not None and self._lmt is not None
        assert self._emap is not None
        per = self._emap.lines_per_region
        size = int(self._pool_lines.size)
        if not 0 <= self._pool_pos <= size:
            raise SchemeIntegrityError(
                f"pool cursor {self._pool_pos} outside [0, {size}]"
            )

        rwr_lines = int(self._plan.rwr_regions.size) * per
        failed_over = rwr_lines - self._rwr_originals_left
        if self._rmt.worn_count() != failed_over:
            raise SchemeIntegrityError(
                f"RMT carries {self._rmt.worn_count()} worn tags but "
                f"{failed_over} RWR lines failed over"
            )

        lmt_slots = np.flatnonzero(self._state == _LMT_REPLACED)
        if len(self._lmt) != lmt_slots.size:
            raise SchemeIntegrityError(
                f"LMT holds {len(self._lmt)} entries for {lmt_slots.size} "
                "rescued slots (dangling or missing remaps)"
            )
        entries = dict(self._lmt.items())
        slas = list(entries.values())
        if len(set(slas)) != len(slas):
            raise SchemeIntegrityError("a spare line appears twice in the LMT")
        handed_out = set(map(int, self._pool_lines[: self._pool_pos]))
        for pla, sla in entries.items():
            if sla not in handed_out:
                raise SchemeIntegrityError(
                    f"LMT maps line {pla} to {sla}, which was never "
                    "allocated from the pool"
                )

        if backing is not None:
            original = np.flatnonzero(self._state == _ORIGINAL)
            if original.size and np.any(
                backing[original] != self._original_line[original]
            ):
                slot = int(
                    original[
                        np.flatnonzero(
                            backing[original] != self._original_line[original]
                        )[0]
                    ]
                )
                raise SchemeIntegrityError(
                    f"unreplaced slot {slot} is backed by line "
                    f"{int(backing[slot])} instead of its original "
                    f"{int(self._original_line[slot])}"
                )
            swr = np.flatnonzero(self._state == _SWR_REPLACED)
            if swr.size:
                originals = self._original_line[swr]
                regions = originals // per
                offsets = originals - regions * per
                expected = self._sra_lookup[regions] * per + offsets
                if np.any(backing[swr] != expected):
                    slot = int(swr[np.flatnonzero(backing[swr] != expected)[0]])
                    raise SchemeIntegrityError(
                        f"failed-over slot {slot} is backed by line "
                        f"{int(backing[slot])} instead of its matched SWR line"
                    )
                if not self._rmt.are_worn(regions, offsets).all():
                    raise SchemeIntegrityError(
                        "a failed-over RWR line is missing its RMT worn tag"
                    )
            for slot in lmt_slots:
                expected_sla = entries.get(int(self._original_line[slot]))
                if expected_sla is None or backing[slot] != expected_sla:
                    raise SchemeIntegrityError(
                        f"rescued slot {int(slot)} is backed by line "
                        f"{int(backing[slot])} but the LMT says "
                        f"{expected_sla!r}"
                    )

        if dead_lines is not None:
            free = self._pool_lines[self._pool_pos :]
            if free.size and dead_lines[free].any():
                line = int(free[np.flatnonzero(dead_lines[free])[0]])
                raise SchemeIntegrityError(
                    f"unallocated pool line {line} is marked dead "
                    "(pool cursor corrupted?)"
                )
            if slas and dead_lines[np.fromiter(slas, dtype=np.intp)].any():
                raise SchemeIntegrityError(
                    "a live LMT entry points at a dead spare line"
                )

    def describe(self) -> str:
        return (
            f"Max-WE (p={self.spare_fraction:.0%}, SWRs={self._swr_fraction:.0%}, "
            f"selection={self._spare_selection}, matching={self._matching})"
        )

    # ------------------------------------------------------------------
    # Ensemble stacking
    # ------------------------------------------------------------------

    @classmethod
    def make_batched_state(
        cls,
        schemes: Sequence[SpareScheme],
        emaps: Sequence[EnduranceMap],
    ) -> Optional[BatchedSchemeState]:
        """Stack the trials' Max-WE bookkeeping into cross-trial tensors.

        Only the paper's deterministic configuration is stacked:
        ``weak-priority`` selection with ``weak-strong`` matching (no
        allocation randomness), identical parameters across members, and
        identical device geometry.  Anything else falls back to per-trial
        instances, which stay bit-identical by construction.
        """
        if not schemes:
            return None
        first = schemes[0]
        if type(first) is not MaxWE or not isinstance(first, MaxWE):
            return None
        if (
            first._spare_selection != "weak-priority"
            or first._matching != "weak-strong"
            or first._region_metric not in ("min", "mean", "max")
        ):
            return None
        for scheme in schemes:
            if type(scheme) is not MaxWE:
                return None
            if (
                scheme.spare_fraction != first.spare_fraction
                or scheme._swr_fraction != first._swr_fraction
                or scheme._spare_selection != first._spare_selection
                or scheme._matching != first._matching
                or scheme._rwr_fallback != first._rwr_fallback
                or scheme._region_metric != first._region_metric
            ):
                return None
        geometry = (emaps[0].regions, emaps[0].lines_per_region)
        if any((e.regions, e.lines_per_region) != geometry for e in emaps):
            return None
        return MaxWEStackedState(schemes, emaps)


def _stable_rank_prefix(values: np.ndarray, need: int) -> np.ndarray:
    """First ``need`` entries of ``np.argsort(values, kind="stable")``.

    A full stable argsort costs ``O(n log n)`` over all ``n`` regions;
    the allocation plan only consumes the weakest ``need`` of them.  An
    ``np.partition`` finds the boundary value in ``O(n)``, the prefix is
    gathered by value, and ties *at* the boundary are resolved exactly as
    the stable sort would -- ascending index -- because ``flatnonzero``
    emits indices in ascending order and the final stable sort of the
    gathered values keeps equal values in gather order.
    """
    n = values.size
    if need <= 0:
        return np.empty(0, dtype=np.intp)
    if need >= n:
        return np.argsort(values, kind="stable")
    boundary = np.partition(values, need - 1)[need - 1]
    head = np.flatnonzero(values < boundary)
    ties = np.flatnonzero(values == boundary)[: need - head.size]
    prefix = np.concatenate([head, ties])
    order = stable_value_argsort(values[prefix])
    return prefix[order]


class MaxWEStackedState(BatchedSchemeState):
    """Trial-stacked Max-WE state for the ``fluid-ensemble`` engine.

    Every trial's slot states, SRA lookup, and allocation-ordered pool
    live as rows of ``(trials, ...)`` tensors, built by one pass per
    trial that skips every ledger the kernel never reads (RMT/LMT,
    original-line provenance, eager backing arrays).  Decisions are
    bit-identical to per-trial :class:`MaxWE` instances because

    * the weak-priority / weak-strong plan is a pure function of the
      endurance map -- :func:`_stable_rank_prefix` reproduces the first
      ``2*swr + additional`` entries of the stable region ranking that
      :meth:`EnduranceMap.rank_regions` produces (both break ties by
      ascending region id), which is all the plan consumes, and the
      paired-slice identities ``swr_paired == ranking[:k]`` /
      ``rwr_paired == ranking[k:2k][::-1]`` hold because a stable argsort
      of an already-ascending slice is the identity permutation;
    * :meth:`replace_batch` is a line-for-line port of
      :meth:`MaxWE.replace_batch` minus the RMT/LMT ledgers, which no
      replacement decision reads (the SWR failover consults only the SRA
      lookup and slot-state codes, and the LMT capacity equals the pool
      size so its overflow check cannot fire before pool exhaustion
      truncates the batch; see :mod:`repro.core.mapping`).

    The ensemble engine only selects this state when paranoia guards are
    off: the RMT/LMT tables that :meth:`MaxWE.check_integrity` audits are
    deliberately not maintained here.
    """

    def __init__(
        self, schemes: Sequence[MaxWE], emaps: Sequence[EnduranceMap]
    ) -> None:
        first = schemes[0]
        emap = emaps[0]
        trials = len(schemes)
        regions = emap.regions
        per = emap.lines_per_region
        self._per = per
        self._rwr_fallback = first._rwr_fallback
        self._description = first.describe()

        spare_count = int(round(first.spare_fraction * regions))
        swr_count = int(round(first.swr_fraction * spare_count))
        additional_count = spare_count - swr_count
        if 2 * swr_count + additional_count > regions:
            raise ConfigurationError(
                f"{swr_count} SWRs need as many RWRs plus {additional_count} "
                f"additional regions, exceeding the {regions} available"
            )

        # Trials init one at a time: each trial's arrays fit in cache,
        # which beats operating on (trials, lines) tensors on every axis,
        # and only the ranking *prefix* (SWRs + RWRs + additional spares)
        # is ever consulted -- the working set is just the complement's
        # membership -- so the full stable argsort collapses to an
        # argpartition plus a small exact-tie-corrected sort.
        need = 2 * swr_count + additional_count
        working_count = regions - swr_count - additional_count
        pool_size = additional_count * per
        metric = first._region_metric
        offsets = np.arange(per, dtype=np.intp)
        self._offsets = offsets

        self._sra_lookup = np.full((trials, regions), -1, dtype=np.intp)
        self._working = np.empty((trials, working_count), dtype=np.intp)
        self._pool_lines = np.empty((trials, pool_size), dtype=np.intp)
        self._pool_floor = np.empty((trials, pool_size), dtype=float)
        self._swr_line_floor = np.full(trials, math.inf)
        working_mask = np.empty(regions, dtype=bool)

        region_buf = np.empty(regions)
        for t in range(trials):
            line_endurance = emaps[t].line_endurance
            grid = line_endurance.reshape(regions, per)
            # min/max reduce column by column: elementwise min/max is
            # exact (no rounding), so this equals ``grid.min(axis=1)``
            # bit for bit while avoiding numpy's slow short-inner-axis
            # reduction.  ``mean`` keeps the axis reduction -- its
            # summation order is part of the solo result.
            if metric == "min" or metric == "max":
                op = np.minimum if metric == "min" else np.maximum
                # Tree-reduce the columns pairwise: each level halves the
                # number of strided passes over the grid, and min/max is
                # associative without rounding so any tree shape matches.
                level = [grid[:, column] for column in range(per)]
                owned = False  # first level holds read-only column views
                while len(level) > 1:
                    merged = []
                    for pair in range(0, len(level) - 1, 2):
                        if owned:
                            merged.append(
                                op(level[pair], level[pair + 1], out=level[pair])
                            )
                        else:
                            merged.append(op(level[pair], level[pair + 1]))
                    if len(level) % 2:
                        merged.append(level[-1])
                    level = merged
                    # Merged entries are fresh arrays (odd tails stay in
                    # the tail slot and are only ever read), so in-place
                    # reuse is safe from here on.
                    owned = True
                region_endurance = region_buf
                region_endurance[:] = level[0]
            else:
                region_endurance = grid.mean(axis=1)
            # EnduranceMap.rank_regions prefix: stable, ties by region id.
            prefix = _stable_rank_prefix(region_endurance, need)
            swr = prefix[:swr_count]
            rwr = prefix[swr_count : 2 * swr_count]
            additional = prefix[2 * swr_count : need]

            # Weak-strong pairing: sra_lookup[rwr_asc[::-1]] = swr_asc.
            if swr_count:
                self._sra_lookup[t, rwr] = swr[::-1]

            # Working regions: ascending complement of SWRs + additional
            # spares (RWRs stay in service), matching the solo plan.
            working_mask[:] = True
            working_mask[swr] = False
            working_mask[additional] = False
            self._working[t] = np.flatnonzero(working_mask)

            # Additional pool, strongest-first, consumed via a per-trial
            # cursor; suffix minima are the batching safety bound.
            if pool_size:
                pool_lines = (additional[:, None] * per + offsets).ravel()
                pool_endurance = line_endurance[pool_lines]
                order = np.argsort(-pool_endurance, kind="stable")
                self._pool_lines[t] = pool_lines[order]
                self._pool_floor[t] = np.minimum.accumulate(
                    pool_endurance[order][::-1]
                )[::-1]
            if swr_count:
                swr_lines = (swr[:, None] * per + offsets).ravel()
                self._swr_line_floor[t] = float(line_endurance[swr_lines].min())

        self._pool_pos = np.zeros(trials, dtype=np.intp)
        self._state = np.zeros((trials, working_count * per), dtype=np.int8)
        self._rwr_originals_left = np.full(trials, swr_count * per, dtype=np.intp)

    @property
    def trials(self) -> int:
        return int(self._state.shape[0])

    @property
    def never_removes(self) -> bool:
        return True

    def backing(self, trial: int) -> np.ndarray:
        # Built on demand: the broadcasted product is already a fresh
        # array the caller owns, so nothing is stored or copied up front.
        working = self._working[trial]
        return (working[:, None] * self._per + self._offsets).reshape(-1)

    def slots(self, trial: int) -> int:
        return int(self._state.shape[1])

    def min_user_slots(self, trial: int) -> int:
        # Max-WE never retires slots; every working line stays addressable.
        return int(self._state.shape[1])

    def replace_batch(
        self, trial: int, slots: np.ndarray, dead_lines: np.ndarray
    ) -> RawBatchOutcome:
        per = self._per
        state_row = self._state[trial]
        states = state_row[slots]
        regions, offsets = np.divmod(dead_lines, per)
        # Row view first: 1-D fancy indexing skips numpy's general
        # broadcast machinery for the scalar trial index.
        sra = self._sra_lookup[trial][regions]
        swr_mask = (states == _ORIGINAL) & (sra >= 0)

        fail_reason: Optional[str] = None
        count = slots.size
        if not self._rwr_fallback:
            strict = np.flatnonzero(states == _SWR_REPLACED)
            if strict.size:
                count = int(strict[0]) + 1
                fail_reason = (
                    f"SWR replacement line {int(dead_lines[strict[0]])} worn out; "
                    "region-mapped slots have no further rescue"
                )

        if fail_reason is None and count == slots.size:
            rescue_positions = np.flatnonzero(~swr_mask)
        else:
            rescue_mask = ~swr_mask
            rescue_mask[count:] = False
            if fail_reason is not None:
                rescue_mask[count - 1] = False
            rescue_positions = np.flatnonzero(rescue_mask)
        available = int(self._pool_lines.shape[1] - self._pool_pos[trial])
        if rescue_positions.size > available:
            count = int(rescue_positions[available]) + 1
            fail_reason = _POOL_EXHAUSTED
            rescue_positions = rescue_positions[:available]

        slots = slots[:count]
        swr_mask = swr_mask[:count]
        actions = np.full(count, BATCH_REPLACE, dtype=np.int8)
        lines = np.full(count, -1, dtype=np.intp)
        if fail_reason is not None:
            actions[count - 1] = BATCH_FAIL

        swr_positions = np.flatnonzero(swr_mask)
        if swr_positions.size:
            lines[swr_positions] = sra[swr_positions] * per + offsets[swr_positions]
            state_row[slots[swr_positions]] = _SWR_REPLACED
            self._rwr_originals_left[trial] -= swr_positions.size

        if rescue_positions.size:
            pos = int(self._pool_pos[trial])
            taken = self._pool_lines[trial, pos : pos + rescue_positions.size]
            self._pool_pos[trial] = pos + rescue_positions.size
            lines[rescue_positions] = taken
            state_row[slots[rescue_positions]] = _LMT_REPLACED

        if fail_reason is not None:
            # Mirror the solo scheme: the unservable slot is retired so
            # state codes agree between stacked and per-trial execution.
            state_row[slots[count - 1]] = _RETIRED

        return actions, lines, _NO_WEAR, fail_reason

    def replacement_extra_floor(self, trial: int) -> float:
        floor = math.inf
        pos = int(self._pool_pos[trial])
        if pos < self._pool_lines.shape[1]:
            floor = float(self._pool_floor[trial, pos])
        if self._rwr_originals_left[trial] > 0:
            floor = min(floor, float(self._swr_line_floor[trial]))
        return floor

    def replacement_capacity(self, trial: int) -> int:
        # Each SWR failover consumes one paired spare line and each pool
        # rescue one pool line, so their sum bounds future replacements.
        return int(self._rwr_originals_left[trial]) + int(
            self._pool_lines.shape[1] - self._pool_pos[trial]
        )

    def describe(self, trial: int) -> str:
        return self._description


#: Shared zero-length wear array: Max-WE never extends budgets, so the
#: engine never indexes the wear component of its raw outcomes.
_NO_WEAR = np.empty(0, dtype=float)
