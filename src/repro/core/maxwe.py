"""Max-WE as a spare-line replacement scheme (Sections 4.1-4.2).

:class:`MaxWE` plugs into the lifetime simulator through the
:class:`~repro.sparing.base.SpareScheme` interface and implements the
paper's replacement procedure:

* a wear-out in an **RWR** line fails over to its permanently matched SWR
  line (same intra-region offset), setting the RMT wear-out tag;
* a wear-out anywhere else is rescued by the **strongest remaining line of
  the additional spare regions**, recorded in the LMT; a rescued line may
  be re-rescued (the old LMT entry is dropped first);
* a wear-out of an SWR line already serving as a replacement falls
  through to the additional pool (the Section 4.2 "otherwise" branch; see
  the ``rwr_fallback_to_lmt`` parameter), and the device is worn out when
  a rescue finds the additional pool empty.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.allocation import AllocationPlan, plan_allocation
from repro.core.mapping import LineMappingTable, RegionMappingTable
from repro.sparing.base import FailDevice, Replacement, ReplaceWith, SpareScheme
from repro.util.validation import require_fraction

#: Slot backing states.
_ORIGINAL = "original"
_SWR_REPLACED = "swr-replaced"
_LMT_REPLACED = "lmt-replaced"


class MaxWE(SpareScheme):
    """The paper's spare-line replacement scheme.

    Parameters
    ----------
    spare_fraction:
        Fraction ``p`` of capacity reserved as spare space (the paper
        settles on 10% after the Figure 6 sweep).
    swr_fraction:
        Fraction ``q`` of the spare space used as permanent SWRs (90%
        after the Figure 7 sweep).
    spare_selection / matching:
        Ablation knobs forwarded to
        :func:`~repro.core.allocation.plan_allocation`; the paper's scheme
        is ``("weak-priority", "weak-strong")``.
    rwr_fallback_to_lmt:
        When an RWR's dedicated SWR line dies, rescue it from the dynamic
        pool instead of failing the device.  On by default: in the
        Section 4.2 algorithm a dead SWR line's region is *not* among the
        RMT's ``pra`` entries, so its replacement falls through to the
        "otherwise" (additional-spare) branch.  Disable for the strictest
        reading in which region-mapped slots get exactly one rescue.
    region_metric:
        Region endurance summary used for ranking.
    """

    name = "max-we"

    def __init__(
        self,
        spare_fraction: float = 0.1,
        swr_fraction: float = 0.9,
        *,
        spare_selection: str = "weak-priority",
        matching: str = "weak-strong",
        rwr_fallback_to_lmt: bool = True,
        region_metric: str = "min",
    ) -> None:
        require_fraction(spare_fraction, "spare_fraction")
        require_fraction(swr_fraction, "swr_fraction")
        super().__init__(spare_fraction=spare_fraction)
        self._swr_fraction = swr_fraction
        self._spare_selection = spare_selection
        self._matching = matching
        self._rwr_fallback = rwr_fallback_to_lmt
        self._region_metric = region_metric
        self._plan: AllocationPlan | None = None
        self._rmt: RegionMappingTable | None = None
        self._lmt: LineMappingTable | None = None
        self._pool: List[int] = []
        self._slot_of_line: Dict[int, int] = {}
        self._slot_state: Dict[int, str] = {}
        self._slot_original_line: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Configuration introspection
    # ------------------------------------------------------------------

    @property
    def swr_fraction(self) -> float:
        """Configured SWR share ``q`` of the spare space."""
        return self._swr_fraction

    @property
    def plan(self) -> AllocationPlan:
        """The static allocation plan (after :meth:`initialize`)."""
        self._require_initialized()
        assert self._plan is not None
        return self._plan

    @property
    def rmt(self) -> RegionMappingTable:
        """The region mapping table."""
        self._require_initialized()
        assert self._rmt is not None
        return self._rmt

    @property
    def lmt(self) -> LineMappingTable:
        """The line mapping table."""
        self._require_initialized()
        assert self._lmt is not None
        return self._lmt

    @property
    def pool_remaining(self) -> int:
        """Additional spare lines not yet handed out."""
        self._require_initialized()
        return len(self._pool)

    def spare_lines(self, total_lines: int) -> int:
        """Spare line count; region-rounded so roles align with regions."""
        self._require_initialized()
        assert self._plan is not None
        assert self._emap is not None
        return self._plan.spare_region_count * self._emap.lines_per_region

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None and self._rng is not None
        emap = self._emap
        self._plan = plan_allocation(
            emap,
            self.spare_fraction,
            self._swr_fraction,
            spare_selection=self._spare_selection,
            matching=self._matching,
            region_metric=self._region_metric,
            rng=self._rng,
        )
        per = emap.lines_per_region

        self._rmt = RegionMappingTable(
            pairs=zip(
                (int(region) for region in self._plan.rwr_regions),
                (int(region) for region in self._plan.swr_regions),
            ),
            lines_per_region=per,
            total_regions=emap.regions,
        )

        # Additional pool: every line of the additional spare regions,
        # strongest first (Section 4.2's allocation order).
        pool_lines: List[int] = []
        for region in self._plan.additional_regions:
            start = int(region) * per
            pool_lines.extend(range(start, start + per))
        endurance = emap.line_endurance
        pool_lines.sort(key=lambda line: -endurance[line])
        self._pool = pool_lines
        self._lmt = LineMappingTable(capacity=len(pool_lines), total_lines=emap.lines)

        backing: List[int] = []
        for region in self._plan.working_regions:
            start = int(region) * per
            backing.extend(range(start, start + per))
        backing_array = np.asarray(backing, dtype=np.intp)
        self._slot_of_line = {int(line): slot for slot, line in enumerate(backing_array)}
        self._slot_state = {slot: _ORIGINAL for slot in range(backing_array.size)}
        self._slot_original_line = {
            slot: int(line) for slot, line in enumerate(backing_array)
        }
        return backing_array

    @property
    def min_user_slots(self) -> int:
        """Max-WE never retires slots; every working line stays addressable."""
        return self.slots

    # ------------------------------------------------------------------
    # Replacement (Section 4.2)
    # ------------------------------------------------------------------

    def replace(self, slot: int, dead_line: int) -> Replacement:
        self._require_initialized()
        assert self._plan is not None and self._rmt is not None and self._lmt is not None
        assert self._emap is not None
        state = self._slot_state.get(slot)
        if state is None:
            raise KeyError(f"unknown slot {slot}")
        per = self._emap.lines_per_region

        if state == _ORIGINAL:
            region = dead_line // per
            offset = dead_line % per
            spare_region = self._rmt.spare_region_of(region)
            if spare_region is not None:
                # RWR line: fail over to the matched SWR line.
                self._rmt.mark_worn(region, offset)
                replacement = spare_region * per + offset
                self._slot_state[slot] = _SWR_REPLACED
                return ReplaceWith(line=replacement)
            return self._rescue_from_pool(slot, self._slot_original_line[slot])

        if state == _LMT_REPLACED:
            # Re-rescue: drop the stale entry, allocate a fresh spare line.
            original = self._slot_original_line[slot]
            if original in self._lmt:
                self._lmt.remove(original)
            return self._rescue_from_pool(slot, original)

        # state == _SWR_REPLACED: the dedicated spare line died.
        if self._rwr_fallback:
            return self._rescue_from_pool(slot, self._slot_original_line[slot])
        return FailDevice(
            reason=(
                f"SWR replacement line {dead_line} worn out; region-mapped slots "
                "have no further rescue"
            )
        )

    def _rescue_from_pool(self, slot: int, original_line: int) -> Replacement:
        assert self._lmt is not None
        if not self._pool:
            return FailDevice(
                reason="additional spare regions exhausted (Section 4.2 failure)"
            )
        spare = self._pool.pop(0)
        self._lmt.insert(original_line, spare)
        self._slot_state[slot] = _LMT_REPLACED
        return ReplaceWith(line=spare)

    def describe(self) -> str:
        return (
            f"Max-WE (p={self.spare_fraction:.0%}, SWRs={self._swr_fraction:.0%}, "
            f"selection={self._spare_selection}, matching={self._matching})"
        )
