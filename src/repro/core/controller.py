"""The exact Max-WE memory-controller datapath (Section 4.2).

:class:`MaxWEController` wires together a wear-leveling module, the hybrid
mapping tables and an :class:`~repro.device.bank.NVMBank`, and services
requests exactly as the paper describes:

* a logical line address is first translated by the wear-leveling module
  to a physical line address (``pla``);
* if ``pla`` has an LMT entry, the access goes to the recorded spare line;
* otherwise, if its region has an RMT entry and the line's wear-out tag is
  set, the access goes to the matched SWR line (same intra-region offset);
* otherwise the access uses ``pla`` directly.

On a write that wears out its target, the replacement procedure runs and
the remaining writes land on the replacement; when replacement fails the
controller raises :class:`~repro.device.errors.DeviceWornOutError`.

This is the reference implementation the fluid simulator is validated
against; it is exact but per-write, so use it with small banks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.maxwe import MaxWE
from repro.device.bank import NVMBank
from repro.device.errors import DeviceWornOutError
from repro.util.rng import RandomState
from repro.wearlevel.base import WearLeveler
from repro.wearlevel.none import NoWearLeveling


class MaxWEController:
    """Exact per-request controller for a Max-WE protected bank.

    Parameters
    ----------
    bank:
        The physical bank (endurance map defines regions).
    scheme:
        A Max-WE instance (or any configured-but-uninitialized one);
        initialized here against the bank's endurance map.
    wearleveler:
        Wear-leveling module in front of the sparing layer; defaults to
        the identity scheme.
    rng:
        Randomness seed shared by the scheme and the wear-leveler.
    """

    def __init__(
        self,
        bank: NVMBank,
        scheme: Optional[MaxWE] = None,
        wearleveler: Optional[WearLeveler] = None,
        rng: RandomState = None,
    ) -> None:
        self._bank = bank
        self._scheme = scheme if scheme is not None else MaxWE()
        self._scheme.initialize(bank.endurance_map, rng)
        self._backing = self._scheme.initial_backing
        self._wl = wearleveler if wearleveler is not None else NoWearLeveling()
        self._wl.attach(bank.endurance_map.line_endurance[self._backing], rng)
        self._writes_served = 0
        self._failure: Optional[str] = None
        self._translation_counts = {"direct": 0, "rmt": 0, "lmt": 0}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bank(self) -> NVMBank:
        """The underlying physical bank."""
        return self._bank

    @property
    def scheme(self) -> MaxWE:
        """The Max-WE instance (mapping tables live here)."""
        return self._scheme

    @property
    def user_lines(self) -> int:
        """Logical capacity exposed to software."""
        if isinstance(self._wl, NoWearLeveling):
            return self._scheme.slots
        # Schemes like Start-Gap sacrifice slots to their own machinery.
        return getattr(self._wl, "logical_lines", self._scheme.slots)

    @property
    def writes_served(self) -> int:
        """User writes completed so far."""
        return self._writes_served

    @property
    def failed(self) -> bool:
        """Whether the device has been declared worn out."""
        return self._failure is not None

    @property
    def failure_reason(self) -> Optional[str]:
        """Why the device failed, if it did."""
        return self._failure

    # ------------------------------------------------------------------
    # Section 4.2 datapath
    # ------------------------------------------------------------------

    @property
    def translation_counts(self) -> dict:
        """How many translations resolved directly vs through RMT/LMT.

        The paper keeps both tables in SRAM for low latency; these
        counters show how rarely the table paths are even exercised --
        translation overhead is paid only after wear-outs occur.
        """
        return dict(self._translation_counts)

    def _slot_to_line(self, slot: int) -> int:
        """Translate a physical slot through LMT, then RMT (paper order)."""
        pla = int(self._backing[slot])
        lmt = self._scheme.lmt
        spare = lmt.lookup(pla)
        if spare is not None:
            self._translation_counts["lmt"] += 1
            return spare
        per = self._bank.endurance_map.lines_per_region
        pra, offset = divmod(pla, per)
        rmt = self._scheme.rmt
        if pra in rmt and rmt.is_worn(pra, offset):
            spare_region = rmt.spare_region_of(pra)
            assert spare_region is not None
            self._translation_counts["rmt"] += 1
            return spare_region * per + offset
        self._translation_counts["direct"] += 1
        return pla

    def read(self, logical: int) -> int:
        """Translate a read; returns the physical line that would be accessed."""
        self._check_alive()
        slot = self._wl.translate(logical)
        return self._slot_to_line(slot)

    def write(self, logical: int) -> int:
        """Service one user write; returns the physical line written.

        Raises
        ------
        DeviceWornOutError
            When a wear-out cannot be repaired.
        """
        self._check_alive()
        slot = self._wl.translate(logical)
        self._write_slot(slot, count=1)
        self._writes_served += 1
        # Wear-leveling side effects (remap data movement) also wear lines.
        for side_slot, extra in self._wl.record_write(logical):
            self._write_slot(side_slot, count=extra)
        return self._slot_to_line(slot) if not self.failed else -1

    def _write_slot(self, slot: int, count: int) -> None:
        """Apply ``count`` writes to a slot, running replacement on wear-out."""
        remaining = count
        while remaining > 0:
            line = self._slot_to_line(slot)
            died = self._bank.write(line, 1)
            remaining -= 1
            if died:
                self._handle_death(slot, line)

    def _handle_death(self, slot: int, dead_line: int) -> None:
        from repro.sparing.base import FailDevice, RemoveSlot, ReplaceWith

        outcome = self._scheme.replace(slot, dead_line)
        if isinstance(outcome, ReplaceWith):
            return  # _slot_to_line picks up the new mapping via LMT/RMT.
        if isinstance(outcome, RemoveSlot):  # pragma: no cover - Max-WE never removes
            raise AssertionError("Max-WE does not degrade capacity")
        assert isinstance(outcome, FailDevice)
        self._failure = outcome.reason
        raise DeviceWornOutError(outcome.reason, float(self._writes_served))

    def _check_alive(self) -> None:
        if self._failure is not None:
            raise DeviceWornOutError(self._failure, float(self._writes_served))

    def normalized_lifetime(self) -> float:
        """Served writes over total endurance (defined once the device failed)."""
        return self._writes_served / self._bank.total_endurance
