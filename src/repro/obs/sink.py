"""JSONL metrics sink: manifest + deterministic metric records.

A metrics file is newline-delimited JSON with a strict shape:

* **line 1** -- the *manifest*: ``{"kind": "manifest", "schema": 1,
  ...}`` carrying everything about the run that is allowed to vary
  between identical invocations -- the timestamp, wall times, and the
  full timing detail (per-span totals/min/max/buckets) -- alongside the
  run's identity (command, config + ``config_hash``, engine, jobs).
* **every following line** -- one deterministic record, sorted by
  ``(kind, name)``:

  - ``{"kind": "counter", "name": ..., "value": ...}``
  - ``{"kind": "gauge", "name": ..., "value": ...}``
  - ``{"kind": "histogram", "name": ..., "boundaries": [...],
    "counts": [...], "count": ..., "sum": ...}``
  - ``{"kind": "span", "name": ..., "calls": ...}``

The split is the file's determinism contract: **drop the first line and
two runs of the same config + seed are byte-identical.**  Span *call
counts* are deterministic (the control flow is), so they live in the
body; span *durations* are not, so they live only in the manifest.
``python -m repro.obs body FILE`` prints the deterministic body for
exactly this comparison, and ``python -m repro.obs validate FILE``
checks a file against this schema (the CI smoke job runs both).
"""

from __future__ import annotations

import hashlib
import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

#: Bump when the record shapes change; the validator rejects mismatches.
METRICS_SCHEMA_VERSION: int = 1

#: Record kinds a metrics file may contain.
RECORD_KINDS: Tuple[str, ...] = ("manifest", "counter", "gauge", "histogram", "span")

#: Manifest fields that may differ between two identical runs.  Everything
#: else in the manifest -- and every body line -- must reproduce exactly.
VOLATILE_MANIFEST_FIELDS: Tuple[str, ...] = ("timestamp", "wall_seconds", "timings")


def canonical_line(payload: Mapping[str, object]) -> str:
    """One deterministic JSONL line (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def config_hash(payload: Mapping[str, object]) -> str:
    """Short stable content hash of a configuration mapping."""
    return hashlib.sha256(canonical_line(payload).encode()).hexdigest()[:16]


def build_manifest(
    registry: MetricsRegistry,
    *,
    command: Optional[str] = None,
    config: Optional[Mapping[str, object]] = None,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    wall_seconds: Optional[float] = None,
    timestamp: Optional[str] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> dict:
    """Assemble the manifest record for a run.

    ``wall_seconds`` defaults to the total of the outermost recorded
    span (``cli/total``, else ``runner/total``) so callers that wrap
    their work in one of those spans get it for free.  ``timestamp``
    defaults to the current UTC time; tests pin it for reproducible
    files.
    """
    snapshot = registry.snapshot()
    if wall_seconds is None:
        for name in ("cli/total", "runner/total"):
            timing = snapshot["timings"].get(name)
            if timing is not None:
                wall_seconds = timing["sum"]
                break
    manifest: Dict[str, object] = {
        "kind": "manifest",
        "schema": METRICS_SCHEMA_VERSION,
        "timestamp": timestamp
        if timestamp is not None
        else datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "command": command,
        "engine": engine,
        "jobs": jobs,
        "config": dict(config) if config is not None else None,
        "config_hash": config_hash(config) if config is not None else None,
        "wall_seconds": wall_seconds,
        "timings": snapshot["timings"],
    }
    if extra:
        manifest.update(extra)
    return manifest


def metrics_lines(registry: MetricsRegistry, manifest: Mapping[str, object]) -> List[str]:
    """The full metrics file as a list of JSONL lines (manifest first)."""
    snapshot = registry.snapshot()
    lines = [canonical_line(manifest)]
    for name, value in snapshot["counters"].items():
        lines.append(canonical_line({"kind": "counter", "name": name, "value": value}))
    for name, value in snapshot["gauges"].items():
        lines.append(canonical_line({"kind": "gauge", "name": name, "value": value}))
    for name, histogram in snapshot["histograms"].items():
        lines.append(
            canonical_line(
                {
                    "kind": "histogram",
                    "name": name,
                    "boundaries": histogram["boundaries"],
                    "counts": histogram["counts"],
                    "count": histogram["count"],
                    "sum": histogram["sum"],
                }
            )
        )
    for name, timing in snapshot["timings"].items():
        lines.append(canonical_line({"kind": "span", "name": name, "calls": timing["count"]}))
    return lines


def write_metrics(
    path: "str | Path",
    registry: MetricsRegistry,
    manifest: Mapping[str, object],
) -> Path:
    """Write the metrics JSONL file (write-then-rename, never torn)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "\n".join(metrics_lines(registry, manifest)) + "\n"
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)
    return path


def read_metrics(path: "str | Path") -> Tuple[dict, List[dict]]:
    """Parse a metrics file into ``(manifest, body_records)``."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty metrics file")
    manifest = json.loads(lines[0])
    if manifest.get("kind") != "manifest":
        raise ValueError(f"{path}: first line is not a manifest record")
    return manifest, [json.loads(line) for line in lines[1:] if line.strip()]


def deterministic_body(path: "str | Path") -> List[str]:
    """The file's body lines (everything after the manifest), verbatim.

    Two runs of the same config + seed must produce identical output
    here -- the comparison the determinism tests and the CI smoke job
    make.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [line for line in lines[1:] if line.strip()]


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "counter": ("name", "value"),
    "gauge": ("name", "value"),
    "histogram": ("name", "boundaries", "counts", "count", "sum"),
    "span": ("name", "calls"),
}


def validate_metrics_lines(lines: Sequence[str]) -> List[str]:
    """Validate raw JSONL lines against the schema; returns error strings."""
    errors: List[str] = []
    if not lines:
        return ["empty metrics file"]
    try:
        manifest = json.loads(lines[0])
    except ValueError as error:
        return [f"line 1: not valid JSON: {error}"]
    if not isinstance(manifest, dict) or manifest.get("kind") != "manifest":
        errors.append("line 1: first record must have kind 'manifest'")
        manifest = {}
    if manifest and manifest.get("schema") != METRICS_SCHEMA_VERSION:
        errors.append(
            f"line 1: schema {manifest.get('schema')!r} != {METRICS_SCHEMA_VERSION}"
        )
    if manifest and not isinstance(manifest.get("timings", {}), dict):
        errors.append("line 1: manifest 'timings' must be a mapping")

    seen: Dict[Tuple[str, str], int] = {}
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            errors.append(f"line {number}: not valid JSON: {error}")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {number}: record must be a JSON object")
            continue
        kind = record.get("kind")
        if kind == "manifest":
            errors.append(f"line {number}: only line 1 may be a manifest")
            continue
        if kind not in _REQUIRED_FIELDS:
            errors.append(f"line {number}: unknown kind {kind!r}")
            continue
        missing = [key for key in _REQUIRED_FIELDS[kind] if key not in record]
        if missing:
            errors.append(f"line {number}: {kind} record missing {missing}")
            continue
        name = record["name"]
        previous = seen.get((kind, name))
        if previous is not None:
            errors.append(
                f"line {number}: duplicate {kind} {name!r} (first on line {previous})"
            )
        seen[(kind, name)] = number
        if kind == "histogram":
            boundaries = record["boundaries"]
            counts = record["counts"]
            if len(counts) != len(boundaries) + 1:
                errors.append(
                    f"line {number}: histogram {name!r} needs "
                    f"{len(boundaries) + 1} count slots, got {len(counts)}"
                )
            elif sum(counts) != record["count"]:
                errors.append(
                    f"line {number}: histogram {name!r} bucket counts sum to "
                    f"{sum(counts)}, 'count' says {record['count']}"
                )
    return errors


def validate_metrics_file(path: "str | Path") -> List[str]:
    """Validate a metrics file on disk; returns error strings (empty = ok)."""
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError as error:
        return [f"cannot read {path}: {error}"]
    return validate_metrics_lines(lines)


# ----------------------------------------------------------------------
# Profile report
# ----------------------------------------------------------------------


def profile_report(manifest: Mapping[str, object], *, limit: int = 24) -> str:
    """Human-readable per-phase breakdown from a manifest's timings.

    Phases are sorted by total time; each shows its call count, total
    seconds, mean, and share of the run's wall clock.  Aggregate spans
    (``cli/total``, ``runner/total``) are listed last as reference rows
    rather than phases.
    """
    from repro.util.tables import render_table

    timings: Mapping[str, Mapping] = manifest.get("timings", {})  # type: ignore[assignment]
    wall = manifest.get("wall_seconds") or 0.0
    reference = {"cli/total", "runner/total"}
    rows = []
    phases = sorted(
        (name for name in timings if name not in reference),
        key=lambda name: -float(timings[name]["sum"]),
    )
    for name in phases[:limit]:
        timing = timings[name]
        total = float(timing["sum"])
        calls = int(timing["count"])
        rows.append(
            [
                name,
                calls,
                f"{total:.4f}",
                f"{total / calls:.6f}" if calls else "-",
                f"{total / wall:.1%}" if wall else "-",
            ]
        )
    for name in sorted(reference & set(timings)):
        timing = timings[name]
        rows.append(
            [name, int(timing["count"]), f"{float(timing['sum']):.4f}", "-", "100.0%" if wall else "-"]
        )
    title = "per-phase wall-time breakdown"
    if wall:
        title += f" (total {float(wall):.3f}s)"
    return render_table(["phase", "calls", "total s", "mean s", "share"], rows, title=title)
