"""Structured metrics: counters, gauges, histograms, and span timings.

One :class:`MetricsRegistry` accompanies a run (a CLI command, a
benchmark leg, one :meth:`~repro.sim.runner.SimRunner.run_detailed`
call) and accumulates everything the run wants to report:

* **counters** -- monotonically increasing totals (``runner.retries``,
  ``sim.deaths``);
* **gauges** -- last-written values (``runner.jobs``);
* **histograms** -- distributions of *deterministic simulation
  quantities* (``sim.deaths_per_run``) over **fixed bucket
  boundaries**, so two identical runs always produce identical bucket
  vectors -- no adaptive binning;
* **timings** -- wall-clock measurements from :meth:`span
  <MetricsRegistry.span>` / :meth:`observe_seconds
  <MetricsRegistry.observe_seconds>` (``runner/worker_run``,
  ``sim/kernel``), also bucketed over fixed boundaries.

The two families have deliberately different determinism contracts,
which the JSONL sink (:mod:`repro.obs.sink`) enforces: counters, gauges,
histograms, and span *call counts* are pure functions of config + seed
and land in the metrics body (byte-identical across identical runs);
wall-clock durations are inherently run-dependent and are confined to
the manifest record.

Worker processes build their own registry and ship a :meth:`snapshot`
back to the supervisor, which folds it in with
:meth:`merge_snapshot` -- every aggregate here is commutative (sums,
min/max), so parallel completion order cannot change the merged totals.
"""

from __future__ import annotations

import math
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Fixed bucket boundaries (upper bounds, seconds) for timing histograms.
#: Chosen to span everything from a cache lookup (~10us) to an hour-long
#: full-scale simulation; the implicit final bucket catches overflow.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0, 600.0, 3600.0,
)

#: Fixed bucket boundaries (upper bounds) for count-valued histograms
#: (deaths per run, batch sizes, epochs, ...).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


def _bucket_index(boundaries: Sequence[float], value: float) -> int:
    """Index of the first bucket whose upper bound is >= ``value``.

    Values above every boundary land in the implicit overflow bucket at
    ``len(boundaries)``.
    """
    for index, bound in enumerate(boundaries):
        if value <= bound:
            return index
    return len(boundaries)


def _validate_boundaries(boundaries: Sequence[float]) -> Tuple[float, ...]:
    bounds = tuple(float(b) for b in boundaries)
    if not bounds:
        raise ValueError("histogram needs at least one bucket boundary")
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise ValueError(f"bucket boundaries must strictly increase, got {bounds}")
    return bounds


@dataclass
class Histogram:
    """A fixed-boundary histogram of observed values.

    ``counts`` has ``len(boundaries) + 1`` slots: one per boundary
    (upper-bound inclusive) plus the overflow bucket.  Boundaries are
    immutable after construction, so the serialized shape of a histogram
    never depends on the values observed.
    """

    boundaries: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        self.boundaries = _validate_boundaries(self.boundaries)
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)
        elif len(self.counts) != len(self.boundaries) + 1:
            raise ValueError(
                f"counts needs {len(self.boundaries) + 1} slots, "
                f"got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[_bucket_index(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-serializable view (finite even when empty)."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold another histogram's :meth:`snapshot` into this one."""
        boundaries = tuple(float(b) for b in snapshot["boundaries"])
        if boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries: "
                f"{boundaries} vs {self.boundaries}"
            )
        for index, count in enumerate(snapshot["counts"]):
            self.counts[index] += int(count)
        incoming = int(snapshot["count"])
        self.count += incoming
        self.total += float(snapshot["sum"])
        if incoming:
            self.min = min(self.min, float(snapshot["min"]))
            self.max = max(self.max, float(snapshot["max"]))


class MetricsRegistry:
    """Accumulator for one run's counters, gauges, histograms, timings.

    Not thread-safe by design: the supervisor and the serial path both
    record from a single thread, and worker processes use their own
    registry merged in afterwards.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timings: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Sequence[float] = DEFAULT_COUNT_BUCKETS,
    ) -> None:
        """Record ``value`` into the deterministic histogram ``name``.

        Use only for quantities that are pure functions of config + seed
        (death counts, epochs, batch sizes); wall-clock durations belong
        in :meth:`observe_seconds`.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(tuple(boundaries))
        histogram.observe(value)

    def observe_seconds(
        self,
        name: str,
        seconds: float,
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        """Record a wall-clock duration under timing ``name``."""
        timing = self._timings.get(name)
        if timing is None:
            timing = self._timings[name] = Histogram(tuple(boundaries))
        timing.observe(seconds)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the enclosed block and record it under timing ``name``.

        Spans do not auto-nest; use path-style names (``runner/scan``,
        ``sim/kernel``) to express the hierarchy explicitly, so a span's
        identity never depends on its caller.
        """
        started = perf_counter()
        try:
            yield
        finally:
            self.observe_seconds(name, perf_counter() - started)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        """Current value of gauge ``name`` (``None`` if never set)."""
        return self._gauges.get(name)

    def timing(self, name: str) -> Optional[Histogram]:
        """The timing histogram recorded under ``name``, if any."""
        return self._timings.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The value histogram recorded under ``name``, if any."""
        return self._histograms.get(name)

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable view of everything recorded so far.

        Keys are emitted sorted so the snapshot (and anything serialized
        from it with ``sort_keys``) is independent of recording order.
        """
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
            "timings": {
                name: self._timings[name].snapshot()
                for name in sorted(self._timings)
            },
        }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (workers should avoid gauges for exactly this reason);
        min/max combine.  All operations are commutative, so merging
        worker snapshots in completion order is schedule-independent.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for family, target in (
            ("histograms", self._histograms),
            ("timings", self._timings),
        ):
            for name, incoming in snapshot.get(family, {}).items():
                existing = target.get(name)
                if existing is None:
                    target[name] = existing = Histogram(
                        tuple(incoming["boundaries"])
                    )
                existing.merge(incoming)


def maybe_span(metrics: Optional[MetricsRegistry], name: str):
    """``metrics.span(name)`` when a registry is attached, else a no-op.

    Lets instrumented code keep one code path::

        with maybe_span(self._metrics, "sim/kernel"):
            ...
    """
    if metrics is None:
        return nullcontext()
    return metrics.span(name)
