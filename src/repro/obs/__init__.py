"""Structured observability: metrics registry, spans, JSONL sink.

See :mod:`repro.obs.metrics` for the in-process accumulator and
:mod:`repro.obs.sink` for the on-disk format; ``docs/observability.md``
documents the metric names, the span taxonomy, and the determinism
contract.  ``python -m repro.obs`` provides ``validate`` / ``show`` /
``body`` subcommands over metrics files.
"""

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    maybe_span,
)
from repro.obs.sink import (
    METRICS_SCHEMA_VERSION,
    VOLATILE_MANIFEST_FIELDS,
    build_manifest,
    canonical_line,
    config_hash,
    deterministic_body,
    metrics_lines,
    profile_report,
    read_metrics,
    validate_metrics_file,
    validate_metrics_lines,
    write_metrics,
)

__all__ = [
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "maybe_span",
    "METRICS_SCHEMA_VERSION",
    "VOLATILE_MANIFEST_FIELDS",
    "build_manifest",
    "canonical_line",
    "config_hash",
    "deterministic_body",
    "metrics_lines",
    "profile_report",
    "read_metrics",
    "validate_metrics_file",
    "validate_metrics_lines",
    "write_metrics",
]
