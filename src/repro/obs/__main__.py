"""CLI over metrics files: ``python -m repro.obs {validate,show,body}``.

* ``validate FILE...`` -- check each file against the metrics schema;
  exit 1 listing every violation if any file fails.  CI runs this on the
  smoke-sweep artifact.
* ``show FILE`` -- print the manifest summary and the per-phase profile
  table for a single file.
* ``body FILE...`` -- print each file's deterministic body (everything
  after the manifest line).  Piping two runs' ``body`` output through
  ``diff`` is the determinism check.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.sink import (
    deterministic_body,
    profile_report,
    read_metrics,
    validate_metrics_file,
)


def _cmd_validate(paths: List[str]) -> int:
    status = 0
    for path in paths:
        errors = validate_metrics_file(path)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


def _cmd_show(path: str) -> int:
    manifest, records = read_metrics(path)
    for key in ("command", "engine", "jobs", "config_hash", "timestamp", "wall_seconds"):
        if manifest.get(key) is not None:
            print(f"{key}: {manifest[key]}")
    counts = {}
    for record in records:
        counts[record.get("kind")] = counts.get(record.get("kind"), 0) + 1
    print(
        "records: "
        + ", ".join(f"{count} {kind}s" for kind, count in sorted(counts.items()))
    )
    for record in records:
        if record.get("kind") == "counter":
            print(f"  {record['name']} = {record['value']}")
    print()
    print(profile_report(manifest))
    return 0


def _cmd_body(paths: List[str]) -> int:
    for path in paths:
        for line in deterministic_body(path):
            print(line)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="inspect repro metrics JSONL files"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_validate = sub.add_parser("validate", help="validate files against the schema")
    p_validate.add_argument("paths", nargs="+")
    p_show = sub.add_parser("show", help="print manifest summary + profile table")
    p_show.add_argument("path")
    p_body = sub.add_parser("body", help="print the deterministic body lines")
    p_body.add_argument("paths", nargs="+")
    args = parser.parse_args(argv)
    if args.command == "validate":
        return _cmd_validate(args.paths)
    if args.command == "show":
        return _cmd_show(args.path)
    return _cmd_body(args.paths)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (head, a closed pager) stopped reading;
        # exit quietly the way well-behaved text tools do.
        sys.exit(0)
