"""OS memory model: the UAA attack vehicle (paper Section 3.2).

The paper implements UAA as a userspace process on a compromised Linux
system: ``malloc`` the whole physical memory, set ``swappiness`` to zero
so the kernel only swaps at 100% utilization, then sweep writes over the
allocation.  On the paper's 4 GB example the kernel itself holds only
100-200 MB (< 5%), so the attacker reaches > 95% of physical memory.

This package models exactly the pieces that determine attack *coverage*:

* :class:`~repro.osmodel.memory.PhysicalMemory` -- page-granular physical
  memory with a kernel reservation;
* :class:`~repro.osmodel.memory.PageAllocator` -- first-touch allocation
  with a swappiness policy deciding when pages spill to swap;
* :class:`~repro.osmodel.attacker.MaliciousProcess` -- the Section 3.2
  attacker; its :meth:`~repro.osmodel.attacker.MaliciousProcess.mount_attack`
  returns a :class:`~repro.attacks.uaa.UniformAddressAttack` whose
  coverage reflects what the process actually pinned.
"""

from repro.osmodel.attacker import MaliciousProcess
from repro.osmodel.memory import PageAllocator, PhysicalMemory, SwapPolicy

__all__ = [
    "MaliciousProcess",
    "PageAllocator",
    "PhysicalMemory",
    "SwapPolicy",
]
