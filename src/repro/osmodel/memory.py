"""Page-granular physical memory with kernel reservation and swap policy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MIB
from repro.util.validation import require_fraction, require_positive_int

#: Standard page size.
PAGE_BYTES: int = 4096

#: The paper's kernel footprint estimate for a 4 GB machine (100-200 MB).
DEFAULT_KERNEL_BYTES: int = 150 * MIB


@dataclass(frozen=True)
class SwapPolicy:
    """The Linux ``swappiness`` knob, reduced to what matters here.

    With ``swappiness = 0`` the kernel swaps only when memory utilization
    reaches 100%, which is exactly what the attacker sets (Section 3.2):
    every allocated page stays resident, so every write lands in NVM.

    Parameters
    ----------
    swappiness:
        0-100; higher values let the kernel swap earlier.  We model the
        resident fraction of an over-subscribed allocation as falling
        linearly with swappiness.
    """

    swappiness: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.swappiness <= 100:
            raise ValueError(
                f"swappiness must be in [0, 100], got {self.swappiness}"
            )

    def resident_fraction(self) -> float:
        """Fraction of an all-of-RAM allocation that stays resident."""
        return 1.0 - 0.5 * (self.swappiness / 100.0)


class PhysicalMemory:
    """Physical memory split into kernel-reserved and allocatable pages.

    Parameters
    ----------
    total_bytes:
        Physical RAM size.
    kernel_bytes:
        Kernel footprint (unreachable by userspace).
    """

    def __init__(
        self, total_bytes: int, kernel_bytes: int = DEFAULT_KERNEL_BYTES
    ) -> None:
        require_positive_int(total_bytes, "total_bytes")
        if kernel_bytes < 0 or kernel_bytes >= total_bytes:
            raise ValueError(
                f"kernel_bytes must be in [0, {total_bytes}), got {kernel_bytes}"
            )
        self._total_pages = total_bytes // PAGE_BYTES
        self._kernel_pages = kernel_bytes // PAGE_BYTES

    @property
    def total_pages(self) -> int:
        """All physical pages."""
        return self._total_pages

    @property
    def kernel_pages(self) -> int:
        """Pages pinned by the kernel."""
        return self._kernel_pages

    @property
    def allocatable_pages(self) -> int:
        """Pages userspace can reach."""
        return self._total_pages - self._kernel_pages

    @property
    def kernel_fraction(self) -> float:
        """Kernel share of physical memory (the paper's < 5%)."""
        return self._kernel_pages / self._total_pages


class PageAllocator:
    """First-touch page allocator over a :class:`PhysicalMemory`.

    Parameters
    ----------
    memory:
        The physical memory being allocated from.
    policy:
        Swap policy in force.
    """

    def __init__(self, memory: PhysicalMemory, policy: SwapPolicy | None = None) -> None:
        self._memory = memory
        self._policy = policy if policy is not None else SwapPolicy()
        self._allocated_pages = 0

    @property
    def memory(self) -> PhysicalMemory:
        """The underlying physical memory."""
        return self._memory

    @property
    def policy(self) -> SwapPolicy:
        """The swap policy in force."""
        return self._policy

    @property
    def allocated_pages(self) -> int:
        """Pages currently handed to userspace."""
        return self._allocated_pages

    def allocate(self, bytes_requested: int) -> int:
        """Allocate pages; returns the number of *resident* pages granted.

        Requests beyond the allocatable space are granted virtually but
        only the resident fraction dictated by the swap policy maps to
        physical pages (the rest lives in swap).
        """
        require_positive_int(bytes_requested, "bytes_requested")
        pages_requested = -(-bytes_requested // PAGE_BYTES)
        available = self._memory.allocatable_pages - self._allocated_pages
        resident = min(pages_requested, available)
        if pages_requested > available:
            # Over-subscription: the swap policy decides how much of the
            # tail stays resident (with swappiness 0, nothing more fits,
            # but nothing already resident is evicted either).
            resident = int(resident * self._policy.resident_fraction()) if (
                self._policy.swappiness > 0
            ) else resident
        self._allocated_pages += resident
        return resident

    def utilization(self) -> float:
        """Allocated share of the allocatable space."""
        if self._memory.allocatable_pages == 0:
            raise ZeroDivisionError("no allocatable pages")
        return self._allocated_pages / self._memory.allocatable_pages


def coverage_of_allocation(memory: PhysicalMemory, resident_pages: int) -> float:
    """Fraction of *total* physical memory a resident allocation can wear."""
    require_fraction(resident_pages / max(memory.total_pages, 1), "resident share")
    return resident_pages / memory.total_pages
