"""The Section 3.2 malicious process.

Reproduces the paper's attack recipe step by step:

1. compromise assumed -- the process is the only significant workload;
2. set ``swappiness = 0`` so allocation stays resident until RAM is full;
3. ``malloc`` the entire physical memory;
4. sweep writes of random data over the allocation, forever.

The deliverable of the model is the attack *coverage*: the fraction of
physical memory the sweep actually wears, which parameterizes
:class:`~repro.attacks.uaa.UniformAddressAttack`.  On the paper's 4 GB /
150 MB-kernel example the coverage is above 95%, supporting the paper's
claim that "malicious application can attack nearly all the physical
main memory".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.uaa import UniformAddressAttack
from repro.osmodel.memory import (
    PAGE_BYTES,
    PageAllocator,
    PhysicalMemory,
    SwapPolicy,
)


@dataclass
class MaliciousProcess:
    """A userspace process mounting UAA through the OS allocator.

    Parameters
    ----------
    memory:
        The machine's physical memory.
    swappiness:
        The value the attacker writes to ``/proc/sys/vm/swappiness``
        (0 in the paper's recipe).
    """

    memory: PhysicalMemory
    swappiness: int = 0

    def __post_init__(self) -> None:
        self._allocator = PageAllocator(self.memory, SwapPolicy(self.swappiness))
        self._resident_pages = 0

    @property
    def resident_pages(self) -> int:
        """Physical pages pinned by the process."""
        return self._resident_pages

    def allocate_all_memory(self) -> int:
        """Step 3: malloc everything; returns resident pages obtained."""
        request_bytes = self.memory.total_pages * PAGE_BYTES
        self._resident_pages = self._allocator.allocate(request_bytes)
        return self._resident_pages

    def coverage(self) -> float:
        """Fraction of total physical memory the sweep will wear."""
        return self._resident_pages / self.memory.total_pages

    def mount_attack(self) -> UniformAddressAttack:
        """Steps 2-4: return the UAA instance this process can mount.

        Raises
        ------
        RuntimeError
            If called before :meth:`allocate_all_memory`.
        """
        if self._resident_pages == 0:
            raise RuntimeError("allocate_all_memory() must run before the attack")
        return UniformAddressAttack(coverage=self.coverage(), random_data=True)
