"""Write-reduction techniques and their attack surface (Section 3.3.2).

The paper argues that wear-out delay techniques below the wear-leveling
layer are also defeated by adversarial inputs:

* :mod:`repro.writereduce.flipnwrite` -- Cho & Lee's Flip-N-Write codec,
  which halves the worst-case bit flips for *benign* data but saves
  nothing against alternating ``0x0000`` / ``0x5555`` patterns;
* :mod:`repro.writereduce.compression` -- a frequent-pattern word
  compressor that collapses redundant data but passes incompressible
  (random) payloads through at full size;
* :mod:`repro.writereduce.dram_buffer` -- a small LRU DRAM-side buffer
  that absorbs hot-line traffic but is useless against UAA's uniform
  sweep, whose reuse distance exceeds any realistic buffer capacity.

Each component exposes wear metrics (cell flips per write, NVM writes per
user write) that the EXT-WR bench compares under benign versus
adversarial traffic.
"""

from repro.writereduce.compression import FrequentPatternCompressor
from repro.writereduce.dram_buffer import DRAMBuffer
from repro.writereduce.flipnwrite import FlipNWrite, hamming_distance

__all__ = [
    "FrequentPatternCompressor",
    "DRAMBuffer",
    "FlipNWrite",
    "hamming_distance",
]
