"""Flip-N-Write (Cho & Lee, MICRO'09) and its adversarial worst case.

Flip-N-Write compares the incoming word with the currently stored word
and writes either the word or its complement -- whichever flips fewer
cells -- plus one flip-tag bit.  For any data this bounds the flipped
cells to half the word width (plus the tag); for *random* benign data the
expected flip count drops from ``w/2`` to roughly ``w/2 - sqrt(w)``-ish
savings; but an adversary alternating ``0x0000...`` and ``0x5555...``
forces exactly half the bits to differ every write, so the codec's choice
is a coin toss between two equally bad encodings (Section 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive_int

#: Default word width in bits.
DEFAULT_WORD_BITS: int = 64


def hamming_distance(a: int, b: int, bits: int = DEFAULT_WORD_BITS) -> int:
    """Number of differing bits between two ``bits``-wide words."""
    require_positive_int(bits, "bits")
    mask = (1 << bits) - 1
    return ((a ^ b) & mask).bit_count()


@dataclass
class FlipNWrite:
    """A Flip-N-Write encoded memory word.

    Attributes
    ----------
    word_bits:
        Width of the data word (the flip tag is accounted separately).
    """

    word_bits: int = DEFAULT_WORD_BITS

    def __post_init__(self) -> None:
        require_positive_int(self.word_bits, "word_bits")
        self._stored = 0  # raw cell contents
        self._flipped = False  # current flip-tag state
        self._total_cell_flips = 0
        self._total_writes = 0

    @property
    def mask(self) -> int:
        """Bit mask of the word width."""
        return (1 << self.word_bits) - 1

    @property
    def logical_value(self) -> int:
        """The value software observes (decoding the flip tag)."""
        return (self._stored ^ self.mask) if self._flipped else self._stored

    @property
    def total_cell_flips(self) -> int:
        """Cells flipped over the lifetime of this word."""
        return self._total_cell_flips

    @property
    def total_writes(self) -> int:
        """Logical writes served."""
        return self._total_writes

    def flips_per_write(self) -> float:
        """Mean cells flipped per logical write (the wear metric)."""
        if self._total_writes == 0:
            raise ZeroDivisionError("no writes recorded yet")
        return self._total_cell_flips / self._total_writes

    def write(self, value: int) -> int:
        """Store ``value``; returns the number of cells flipped.

        Chooses between writing ``value`` or its complement, whichever
        flips fewer cells; a change of the flip-tag bit counts as one
        extra cell flip.
        """
        value &= self.mask
        plain_flips = hamming_distance(self._stored, value, self.word_bits)
        complement = value ^ self.mask
        complement_flips = hamming_distance(self._stored, complement, self.word_bits)

        if plain_flips + (1 if self._flipped else 0) <= complement_flips + (
            0 if self._flipped else 1
        ):
            tag_flip = 1 if self._flipped else 0
            self._stored = value
            self._flipped = False
            flips = plain_flips + tag_flip
        else:
            tag_flip = 0 if self._flipped else 1
            self._stored = complement
            self._flipped = True
            flips = complement_flips + tag_flip

        self._total_cell_flips += flips
        self._total_writes += 1
        return flips

    def worst_case_flips(self) -> int:
        """Upper bound on flips per write: half the word plus the tag."""
        return self.word_bits // 2 + 1
