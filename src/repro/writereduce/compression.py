"""A frequent-pattern word compressor and its incompressible worst case.

Compression-based write reduction shrinks each stored word so fewer cells
are written; the paper notes it is "ineffective when writing
incompressible data patterns" (Section 3.3.2).  This module implements a
frequent-pattern compressor in the spirit of FPC: each 64-bit word is
matched against a small pattern dictionary (all-zeros, all-ones,
sign-extended small values, repeated bytes) and encoded with a 3-bit
prefix plus the pattern's payload; unmatched words are stored verbatim
with the prefix overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Encoding prefix width in bits.
PREFIX_BITS: int = 3

#: Word width handled by the compressor.
WORD_BITS: int = 64


@dataclass(frozen=True)
class Encoding:
    """Result of compressing one word.

    Attributes
    ----------
    pattern:
        Matched pattern name (``"uncompressed"`` when none matched).
    stored_bits:
        Cells written for this word, including the prefix.
    """

    pattern: str
    stored_bits: int

    @property
    def compressed(self) -> bool:
        """Whether any pattern matched."""
        return self.pattern != "uncompressed"


class FrequentPatternCompressor:
    """FPC-style compressor over 64-bit words."""

    def encode(self, value: int) -> Encoding:
        """Compress ``value``; returns the encoding and its cell cost."""
        if not 0 <= value < (1 << WORD_BITS):
            raise ValueError(f"value must be an unsigned {WORD_BITS}-bit word")
        if value == 0:
            return Encoding("zero", PREFIX_BITS)
        if value == (1 << WORD_BITS) - 1:
            return Encoding("ones", PREFIX_BITS)
        if value < (1 << 8):
            return Encoding("small-8", PREFIX_BITS + 8)
        if value < (1 << 16):
            return Encoding("small-16", PREFIX_BITS + 16)
        if value < (1 << 32):
            return Encoding("small-32", PREFIX_BITS + 32)
        if self._is_repeated_byte(value):
            return Encoding("repeated-byte", PREFIX_BITS + 8)
        if self._is_repeated_halfword(value):
            return Encoding("repeated-halfword", PREFIX_BITS + 16)
        return Encoding("uncompressed", PREFIX_BITS + WORD_BITS)

    def stored_bits(self, value: int) -> int:
        """Cells written when storing ``value``."""
        return self.encode(value).stored_bits

    def compression_ratio(self, values: "list[int]") -> float:
        """Mean stored bits over raw bits for a sample of words.

        < 1 means the compressor is saving writes; adversarial random
        payloads push this above 1 (the prefix overhead with no savings).
        """
        if not values:
            raise ValueError("cannot compute a ratio over no values")
        stored = sum(self.stored_bits(value) for value in values)
        return stored / (len(values) * WORD_BITS)

    @staticmethod
    def _is_repeated_byte(value: int) -> bool:
        byte = value & 0xFF
        pattern = int.from_bytes(bytes([byte]) * 8, "little")
        return value == pattern

    @staticmethod
    def _is_repeated_halfword(value: int) -> bool:
        half = value & 0xFFFF
        pattern = 0
        for shift in range(0, WORD_BITS, 16):
            pattern |= half << shift
        return value == pattern
