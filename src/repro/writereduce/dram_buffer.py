"""A DRAM-side LRU write buffer and its uniform-traffic worst case.

NVM main memories commonly hide latency and wear behind a small DRAM
last-level buffer that absorbs repeated writes to hot lines.  Section
3.3.2 notes UAA's writes are uniform: every line's reuse distance equals
the whole memory size, so any realistically sized buffer misses on
essentially every access and the NVM sees the full attack stream.

:class:`DRAMBuffer` is a write-back LRU cache over line addresses; the
metric is the *NVM write rate* -- evicted dirty lines per user write --
which approaches 0 for hot/cold traffic and 1 for UAA.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.util.validation import require_positive_int


class DRAMBuffer:
    """Write-back LRU buffer over line addresses.

    Parameters
    ----------
    capacity_lines:
        Number of lines the buffer can hold.
    """

    def __init__(self, capacity_lines: int) -> None:
        require_positive_int(capacity_lines, "capacity_lines")
        self._capacity = capacity_lines
        self._lines: OrderedDict[int, bool] = OrderedDict()  # address -> dirty
        self._user_writes = 0
        self._nvm_writes = 0
        self._hits = 0

    @property
    def capacity_lines(self) -> int:
        """Configured capacity."""
        return self._capacity

    @property
    def user_writes(self) -> int:
        """Writes offered to the buffer."""
        return self._user_writes

    @property
    def nvm_writes(self) -> int:
        """Dirty evictions that reached the NVM."""
        return self._nvm_writes

    @property
    def hits(self) -> int:
        """Writes absorbed by a resident line."""
        return self._hits

    def write(self, address: int) -> bool:
        """Buffer one write; returns ``True`` if an NVM write was emitted."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self._user_writes += 1
        if address in self._lines:
            self._hits += 1
            self._lines.move_to_end(address)
            self._lines[address] = True
            return False
        emitted = False
        if len(self._lines) >= self._capacity:
            _, dirty = self._lines.popitem(last=False)
            if dirty:
                self._nvm_writes += 1
                emitted = True
        self._lines[address] = True
        return emitted

    def flush(self) -> int:
        """Write back every dirty line; returns the NVM writes emitted."""
        emitted = sum(1 for dirty in self._lines.values() if dirty)
        self._nvm_writes += emitted
        self._lines.clear()
        return emitted

    def nvm_write_rate(self) -> float:
        """NVM writes per user write so far (excluding a final flush)."""
        if self._user_writes == 0:
            raise ZeroDivisionError("no writes offered yet")
        return self._nvm_writes / self._user_writes
