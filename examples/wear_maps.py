#!/usr/bin/env python3
"""Wear maps: *seeing* UAA damage with and without Max-WE.

Drives the exact controller on a small bank until device failure under
UAA twice -- unprotected, and under Max-WE -- then renders each bank's
per-region utilization as an ASCII heatmap.  The unprotected device dies
with most of the map dark (endurance stranded in strong regions: the
paper's Figure 1 triangle); Max-WE's map burns much more evenly because
the weakest regions were pre-positioned as sacrificial spares.
"""

import itertools

import numpy as np

from repro.attacks.uaa import UniformAddressAttack
from repro.core.controller import MaxWEController
from repro.core.maxwe import MaxWE
from repro.device.bank import NVMBank
from repro.device.errors import DeviceWornOutError
from repro.device.inspect import BankInspector, wear_heatmap
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map

REGIONS = 128
LINES_PER_REGION = 2
Q = 20.0


def build_bank(seed=11):
    model = LinearEnduranceModel.from_q(Q, e_low=200.0)
    emap = linear_endurance_map(
        REGIONS * LINES_PER_REGION, REGIONS, model, rng=seed
    )
    return NVMBank(emap)


def attack_until_failure(controller):
    attack = UniformAddressAttack(random_data=False)
    stream = attack.stream(controller.user_lines, rng=1)
    try:
        for request in itertools.islice(stream, 50_000_000):
            controller.write(request.address)
    except DeviceWornOutError:
        pass
    return controller


def unprotected_until_first_death(bank):
    """Uniform writes straight at the bank until any line dies."""
    writes = 0
    order = np.arange(bank.lines)
    while True:
        for line in order:
            if bank.write(int(line)):
                return writes
            writes += 1


def main() -> None:
    print(f"Device: {REGIONS} regions x {LINES_PER_REGION} lines, q = {Q:g}\n")

    unprotected = build_bank()
    unprotected_until_first_death(unprotected)
    inspector = BankInspector(unprotected)
    print(wear_heatmap(unprotected, columns=64, title="UNPROTECTED at failure:"))
    print(
        f"utilization {unprotected.utilization():.1%}, "
        f"stranded endurance {inspector.stranded_endurance():,.0f} writes\n"
    )

    protected_bank = build_bank()
    controller = MaxWEController(protected_bank, MaxWE(0.1, 0.9), rng=11)
    attack_until_failure(controller)
    inspector = BankInspector(protected_bank)
    print(wear_heatmap(protected_bank, columns=64, title="MAX-WE (10% spares) at failure:"))
    print(
        f"utilization {protected_bank.utilization():.1%}, "
        f"stranded endurance {inspector.stranded_endurance():,.0f} writes"
    )
    print(
        "\nThe unprotected map is nearly dark -- one weak region died and\n"
        "took the device with it. Max-WE's map glows much brighter: the\n"
        "sacrificial weak regions and the matched pairs let the attack be\n"
        "absorbed until a far larger share of total endurance was consumed."
    )


if __name__ == "__main__":
    main()
