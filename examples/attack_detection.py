#!/usr/bin/env python3
"""Online attack detection: catching UAA and BPA in the write stream.

Extension demo: a controller-side classifier (see ``repro.detect``)
watches a sliding window of write addresses and latches an alarm when the
statistics match an attack signature -- UAA's sustained sequential sweep
or BPA's single-address bursts -- while letting benign Zipf and hot/cold
traffic through.  Detection complements Max-WE: the sparing scheme
guarantees lifetime if the attack runs, the detector gives the OS a
chance to kill it early.
"""

import itertools

from repro.attacks import (
    BirthdayParadoxAttack,
    HotColdWorkload,
    RepeatedAddressAttack,
    UniformAddressAttack,
    ZipfWorkload,
)
from repro.detect import AttackClassifier, WriteRateMonitor

USER_LINES = 1 << 14
WRITES = 16_384
WINDOW = 1024


def main() -> None:
    workloads = {
        "UAA sweep        ": UniformAddressAttack(random_data=False),
        "BPA bursts       ": BirthdayParadoxAttack(burst_length=4096),
        "repeated address ": RepeatedAddressAttack(target=99),
        "Zipf (benign)    ": ZipfWorkload(exponent=1.1),
        "hot/cold (benign)": HotColdWorkload(),
    }

    print(f"Streaming {WRITES} writes through a {WINDOW}-write window:\n")
    for name, attack in workloads.items():
        classifier = AttackClassifier(WriteRateMonitor(window=WINDOW))
        for request in itertools.islice(attack.stream(USER_LINES, rng=1), WRITES):
            classifier.observe(request.address)
        if classifier.alarmed:
            print(
                f"  {name} ALARM after {classifier.alarmed_at} writes "
                f"(verdict: {classifier.last_verdict.value})"
            )
        else:
            print(f"  {name} clean (verdict: {classifier.last_verdict.value})")

    print(
        "\nBoth attacks latch the alarm within three windows; both benign\n"
        "workloads pass. An attacker must slow below the detector's\n"
        "thresholds to hide -- at which point Max-WE's lifetime guarantee\n"
        "is doing its job anyway."
    )


if __name__ == "__main__":
    main()
