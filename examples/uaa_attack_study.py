#!/usr/bin/env python3
"""Attack study: why UAA defeats every wear-leveling scheme (paper Sec. 3).

Walks the full Section 3 argument as executable steps:

1. the OS-level attack vehicle -- a malicious process mallocs nearly all
   physical memory (Section 3.2), fixing the attack coverage;
2. UAA against an unprotected device under every wear-leveling scheme:
   uniform traffic is permutation-invariant, so the scheme makes no
   difference (Section 5.2.1's observation);
3. the contrast: a *repeated-address* attack, which wear-leveling does
   dissipate -- showing UAA is the interesting threat, not a strawman.
"""

from repro import NoSparing, RepeatedAddressAttack, UniformAddressAttack
from repro.osmodel import MaliciousProcess, PhysicalMemory
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.util.units import GIB, MIB
from repro.wearlevel import make_scheme

WEAR_LEVELERS = ("none", "start-gap", "tlsr", "pcm-s", "bwl", "wawl")


def main() -> None:
    # Step 1: the OS-level attack vehicle (paper Section 3.2).
    memory = PhysicalMemory(total_bytes=4 * GIB, kernel_bytes=150 * MIB)
    process = MaliciousProcess(memory, swappiness=0)
    process.allocate_all_memory()
    attack = process.mount_attack()
    print("Section 3.2: the attack vehicle")
    print(f"  physical memory:  4 GB, kernel reserves {memory.kernel_fraction:.1%}")
    print(f"  attacker coverage: {process.coverage():.1%} of physical memory")
    print(f"  mounted attack:    {attack.describe()}\n")

    config = ExperimentConfig()
    emap = config.make_emap()

    # Step 2: UAA does not care which wear-leveling scheme is deployed.
    print("Section 5.2.1: UAA lifetime is uncorrelated with wear-leveling")
    for name in WEAR_LEVELERS:
        wl = make_scheme(name, lines_per_region=1) if name != "none" else make_scheme(name)
        result = simulate_lifetime(
            emap, UniformAddressAttack(), NoSparing(), wearleveler=wl, rng=config.seed
        )
        print(f"  {name:10s} {result.normalized_lifetime:7.2%} of ideal")

    # Step 3: wear-leveling DOES defeat the classic repeated-address attack.
    print("\nContrast: repeated-address attack (the threat wear-leveling solves)")
    for name in ("none", "tlsr", "wawl"):
        wl = make_scheme(name, lines_per_region=1) if name != "none" else make_scheme(name)
        result = simulate_lifetime(
            emap, RepeatedAddressAttack(), NoSparing(), wearleveler=wl, rng=config.seed
        )
        print(f"  {name:10s} {result.normalized_lifetime:7.2%} of ideal")
    print(
        "\nRandomizing schemes dissipate a single hot address but cannot help\n"
        "against UAA: uniform writes are already 'perfectly leveled', and the\n"
        "weakest lines still die first (Equation 4)."
    )


if __name__ == "__main__":
    main()
