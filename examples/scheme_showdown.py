#!/usr/bin/env python3
"""Scheme showdown: Max-WE vs PCD/PS vs PS-worst (paper Section 5.3.1 + Fig. 8).

Runs both halves of the paper's head-to-head evaluation:

* under UAA at 10% spares (the Section 5.3.1 text table, including the
  improvement factors over the unprotected device);
* under BPA across the four wear-leveling baselines, with the geometric
  mean the paper summarizes Figure 8 with.
"""

from repro.sim.config import ExperimentConfig
from repro.sim.experiments import bpa_scheme_comparison, uaa_scheme_comparison
from repro.util.stats import geometric_mean
from repro.util.tables import render_table


def main() -> None:
    config = ExperimentConfig()

    print("Section 5.3.1 -- lifetimes under UAA (10% spares)")
    results = uaa_scheme_comparison(config)
    baseline = results["no-protection"].normalized_lifetime
    rows = [
        [name, result.normalized_lifetime, result.normalized_lifetime / baseline]
        for name, result in results.items()
    ]
    print(render_table(["scheme", "normalized lifetime", "improvement (X)"], rows))
    print("paper: 4.1% / 28.5% (6.9X) / 30.6% (7.4X) / 43.1% (9.5X)\n")

    print("Figure 8 -- lifetimes under BPA (10% spares, 90% SWRs)")
    comparison = bpa_scheme_comparison(config)
    wearlevelers = list(next(iter(comparison.values())).keys())
    headers = ["scheme"] + wearlevelers + ["gmean"]
    rows = []
    for name, row in comparison.items():
        lifetimes = [row[wl].normalized_lifetime for wl in wearlevelers]
        rows.append([name] + lifetimes + [geometric_mean(lifetimes)])
    print(render_table(headers, rows))
    print("paper gmeans: PS-worst 25.6%, PCD/PS 41.2%, Max-WE 47.4%")


if __name__ == "__main__":
    main()
