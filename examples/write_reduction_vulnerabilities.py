#!/usr/bin/env python3
"""Section 3.3.2 live: defeating DRAM buffers and write-reduction codecs.

Three executable demonstrations of the paper's vulnerability arguments:

1. a DRAM LRU buffer absorbs a hot/cold workload but passes UAA through
   untouched (uniform traffic has no reuse a buffer can exploit);
2. Flip-N-Write saves cells on random benign data but an adversary
   alternating 0x0000/0x5555 pins it at its worst case;
3. frequent-pattern compression collapses redundant data but random
   payloads come out *larger* than raw (prefix overhead, no savings).
"""

import itertools

import numpy as np

from repro.attacks import UniformAddressAttack, HotColdWorkload
from repro.attacks.patterns import FlipNWriteDefeatAttack
from repro.writereduce import DRAMBuffer, FlipNWrite, FrequentPatternCompressor

USER_LINES = 4096
BUFFER_LINES = 256
WRITES = 50_000


def dram_buffer_demo() -> None:
    print("1. DRAM buffer (capacity 256 lines, memory 4096 lines)")
    for name, attack in (
        ("hot/cold 90/10", HotColdWorkload()),
        ("UAA sweep     ", UniformAddressAttack(random_data=False)),
    ):
        buffer = DRAMBuffer(BUFFER_LINES)
        stream = attack.stream(USER_LINES, rng=1)
        for request in itertools.islice(stream, WRITES):
            buffer.write(request.address)
        print(
            f"   {name}: NVM write rate = {buffer.nvm_write_rate():.2f} "
            f"(hit rate {buffer.hits / buffer.user_writes:.1%})"
        )
    print("   -> UAA's reuse distance is the whole memory; the buffer is inert.\n")


def flip_n_write_demo() -> None:
    print("2. Flip-N-Write (64-bit words)")
    rng = np.random.default_rng(2)
    benign = FlipNWrite()
    for _ in range(WRITES // 10):
        benign.write(int(rng.integers(0, 2**64, dtype=np.uint64)))

    adversarial = FlipNWrite()
    attack = FlipNWriteDefeatAttack()
    stream = attack.stream(USER_LINES, rng=3)
    for request in itertools.islice(stream, WRITES // 10):
        assert request.data is not None
        adversarial.write(request.data)

    print(f"   benign random data: {benign.flips_per_write():5.1f} flips/write")
    print(f"   0x0000/0x5555 attack: {adversarial.flips_per_write():5.1f} flips/write "
          f"(worst case is {adversarial.worst_case_flips()})")
    print("   -> the adversary pins the codec at its worst case every write.\n")


def compression_demo() -> None:
    print("3. Frequent-pattern compression (64-bit words)")
    compressor = FrequentPatternCompressor()
    rng = np.random.default_rng(4)
    benign = [0, 0xFF, 42, 0x4242424242424242, 2**15 - 1] * 200
    random_words = [int(v) for v in rng.integers(2**33, 2**64, size=1000, dtype=np.uint64)]
    print(f"   benign mix:  {compressor.compression_ratio(benign):5.2f}x raw size")
    print(f"   random data: {compressor.compression_ratio(random_words):5.2f}x raw size")
    print("   -> incompressible payloads defeat compression-based reduction.")


def main() -> None:
    dram_buffer_demo()
    flip_n_write_demo()
    compression_demo()


if __name__ == "__main__":
    main()
