#!/usr/bin/env python3
"""Figure 3 walkthrough: the paper's seven-region worked example, exactly.

The paper illustrates Max-WE with a toy PCM of seven regions whose
endurance order (ascending) is 2 < 3 < 5 < 1 < 6 < 0 < 4:

* weak-priority picks regions 2 and 3 (the weakest two) as SWRs and
  regions 5 and 1 (the next weakest) as RWRs;
* weak-strong matching pairs the weakest SWR (2) with the strongest RWR
  (1) and SWR 3 with RWR 5;
* region 6 (the next weakest after the RWRs) becomes the additional
  spare region that dynamically rescues wear-outs outside the RWRs.

This example builds that exact device, verifies the allocation matches
the figure, then drives the exact :class:`MaxWEController` until a line
in region 0 wears out and shows the LMT entry appear -- the figure's
"region 6 rescues region 0" arrow, live.
"""

import numpy as np

from repro.core import MaxWE, MaxWEController
from repro.device import NVMBank
from repro.endurance import EnduranceMap

#: Per-region endurance giving the figure's ascending order 2<3<5<1<6<0<4.
#: Values are chosen so each weak-strong pair's combined endurance (75)
#: outlasts region 0 (55), letting the figure's "region 6 rescues region 0"
#: event occur before the paired bands exhaust.
REGION_ENDURANCE = {2: 30.0, 3: 35.0, 5: 40.0, 1: 45.0, 6: 50.0, 0: 55.0, 4: 70.0}

LINES_PER_REGION = 3


def build_device() -> NVMBank:
    """The figure's toy PCM: 7 regions x 3 lines."""
    endurance = np.empty(7 * LINES_PER_REGION)
    for region, value in REGION_ENDURANCE.items():
        endurance[region * LINES_PER_REGION : (region + 1) * LINES_PER_REGION] = value
    return NVMBank(EnduranceMap(endurance, regions=7))


def main() -> None:
    bank = build_device()
    # 3 of 7 regions spare (~43%), two thirds of them SWRs -> 2 SWRs + 1
    # additional region, exactly the figure's split.
    scheme = MaxWE(spare_fraction=3 / 7, swr_fraction=2 / 3)
    controller = MaxWEController(bank, scheme, rng=7)
    plan = scheme.plan

    print("Allocation (paper Figure 3):")
    print(f"  SWRs:              regions {sorted(int(r) for r in plan.swr_regions)}"
          "  (paper: [2, 3])")
    print(f"  RWRs:              regions {sorted(int(r) for r in plan.rwr_regions)}"
          "  (paper: [1, 5])")
    print(f"  additional spares: regions {sorted(int(r) for r in plan.additional_regions)}"
          "  (paper: [6])")
    pairs = {int(r): int(s) for r, s in zip(plan.rwr_regions, plan.swr_regions)}
    print(f"  weak-strong pairs: RWR->SWR {pairs}  (paper: {{1: 2, 5: 3}})\n")

    # Hammer every logical line uniformly (UAA in miniature) until the
    # first wear-out outside the RWRs is rescued by region 6.
    print("Driving UAA until region 0 wears a line out...")
    logical = 0
    while len(scheme.lmt) == 0:
        controller.write(logical)
        logical = (logical + 1) % controller.user_lines
    (worn_line, spare_line), = (
        (pla, scheme.lmt.lookup(pla)) for pla in range(bank.lines) if pla in scheme.lmt
    )
    worn_region = worn_line // LINES_PER_REGION
    spare_region = spare_line // LINES_PER_REGION
    print(f"  line {worn_line} (region {worn_region}) wore out and")
    print(f"  was remapped to spare line {spare_line} (region {spare_region}) "
          "via the LMT --")
    print(f"  the figure's 'region {spare_region} rescues region {worn_region}' "
          "arrow, live.")
    print(f"\nRMT wear-out tags set so far: {scheme.rmt.worn_count()}")
    print(f"Writes served: {controller.writes_served}")


if __name__ == "__main__":
    main()
