#!/usr/bin/env python3
"""Monte-Carlo study: how tight are the paper's single numbers?

The paper reports one lifetime per configuration.  This example reruns
the Section 5.3.1 comparison across independently seeded replicas
(endurance placement, spare selection, and wear-leveling randomization
all vary) and reports 95% confidence intervals -- showing the headline
ladder Max-WE > PCD/PS > PS-worst > nothing is far outside noise.
"""

from repro import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.montecarlo import monte_carlo_lifetime
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS

REPLICAS = 12


def main() -> None:
    # A *sampled* endurance family (lognormal) so every replica draws a
    # fresh chip: with the deterministic linear map the UAA experiment has
    # literally zero variance across seeds (uniform traffic is
    # placement-invariant), which is itself worth knowing.
    config = ExperimentConfig(
        regions=512, lines_per_region=4, endurance_model="lognormal"
    )
    schemes = {
        "no-protection": NoSparing,
        "ps-worst": lambda: PS.worst_case(0.1),
        "pcd-ps": lambda: PCD(0.1),
        "max-we": lambda: MaxWE(0.1, 0.9),
    }

    print(f"UAA lifetimes across {REPLICAS} seeded replicas (95% CI):\n")
    studies = {}
    for name, factory in schemes.items():
        study = monte_carlo_lifetime(
            UniformAddressAttack,
            factory,
            config=config,
            replicas=REPLICAS,
        )
        studies[name] = study
        print(f"  {name:14s} {study}")

    maxwe, pcd = studies["max-we"], studies["pcd-ps"]
    print(
        f"\nMax-WE's CI [{maxwe.ci_low:.1%}, {maxwe.ci_high:.1%}] sits "
        f"entirely above PCD/PS's [{pcd.ci_low:.1%}, {pcd.ci_high:.1%}]: "
        "the paper's ladder is robust to every randomized choice in the setup."
    )


if __name__ == "__main__":
    main()
