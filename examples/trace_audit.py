#!/usr/bin/env python3
"""Trace-driven auditing: record an attack, classify it, replay it.

A third party auditing an NVM device doesn't get the attacker's
generator, they get a *trace*.  This example shows the full loop:

1. record UAA, BPA and a benign Zipf workload into trace files;
2. classify each trace from its statistics alone (uniformity and
   burstiness) -- recovering the paper's taxonomy without being told
   which attack produced it;
3. replay the UAA trace through the lifetime simulator and confirm it
   reproduces the generator-driven lifetime.
"""

import tempfile
from pathlib import Path

from repro import NoSparing, UniformAddressAttack, simulate_lifetime
from repro.attacks import BirthdayParadoxAttack, ZipfWorkload
from repro.sim.config import ExperimentConfig
from repro.trace import TraceAttack, WriteTrace, analyze_trace, record_trace

USER_LINES = 1024
TRACE_LENGTH = 20_480


def main() -> None:
    config = ExperimentConfig(regions=512, lines_per_region=2)
    workloads = {
        "uaa.npz": UniformAddressAttack(random_data=False),
        "bpa.npz": BirthdayParadoxAttack(burst_length=256),
        "zipf.npz": ZipfWorkload(exponent=1.2, shuffle=False),
    }

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)

        print("Step 1 -- record and save traces")
        for filename, attack in workloads.items():
            trace = record_trace(attack, USER_LINES, TRACE_LENGTH, rng=1)
            path = trace.save(directory / filename)
            print(f"  {filename}: {len(trace)} writes from {trace.source!r}")

        print("\nStep 2 -- classify each trace from its statistics alone")
        for filename in workloads:
            trace = WriteTrace.load(directory / filename)
            stats = analyze_trace(trace)
            print(
                f"  {filename}: kind={stats.kind:12s} "
                f"uniformity={stats.uniformity:6.1f} "
                f"burstiness={stats.burstiness:.2f} "
                f"touched={stats.touched_lines}/{stats.user_lines}"
            )

        print("\nStep 3 -- replayed UAA reproduces the generated lifetime")
        emap = config.make_emap()
        generated = simulate_lifetime(
            emap, UniformAddressAttack(), NoSparing(), rng=config.seed
        )
        trace = WriteTrace.load(directory / "uaa.npz")
        replayed = simulate_lifetime(
            emap, TraceAttack(trace), NoSparing(), rng=config.seed
        )
        print(f"  generated: {generated.normalized_lifetime:.2%} of ideal")
        print(f"  replayed:  {replayed.normalized_lifetime:.2%} of ideal")


if __name__ == "__main__":
    main()
