#!/usr/bin/env python3
"""Quickstart: how much does Max-WE buy against the Uniform Address Attack?

Builds the paper's evaluation device (2048 regions, linear endurance
variation with EH/EL = 50), mounts UAA against an unprotected bank and a
Max-WE protected bank, and prints the normalized lifetimes side by side
with the closed-form predictions of Equations 5 and 6.
"""

from repro import (
    ExperimentConfig,
    MaxWE,
    NoSparing,
    UniformAddressAttack,
    simulate_lifetime,
)
from repro.analysis.lifetime import maxwe_normalized, uaa_fraction


def main() -> None:
    config = ExperimentConfig()
    emap = config.make_emap()
    attack = UniformAddressAttack()

    unprotected = simulate_lifetime(emap, attack, NoSparing(), rng=config.seed)
    protected = simulate_lifetime(
        emap, attack, MaxWE(spare_fraction=0.1, swr_fraction=0.9), rng=config.seed
    )

    print("Device: 2048 regions, linear endurance variation, q = EH/EL = 50")
    print("Attack: UAA (one write per line, sequentially, forever)\n")
    print(
        f"  unprotected:   {unprotected.normalized_lifetime:7.2%} of ideal "
        f"(Eq. 5 predicts {uaa_fraction(config.q):.2%})"
    )
    print(
        f"  Max-WE (10%):  {protected.normalized_lifetime:7.2%} of ideal "
        f"(Eq. 6 predicts {maxwe_normalized(0.1, config.q):.2%})"
    )
    improvement = protected.improvement_over(unprotected)
    print(f"\n  Max-WE extends lifetime {improvement:.1f}X (paper reports 9.5X).")
    print(f"  Failure mode without protection: {unprotected.failure_reason}")
    print(f"  Failure mode with Max-WE:        {protected.failure_reason}")


if __name__ == "__main__":
    main()
