#!/usr/bin/env python3
"""Defence tuning: choosing Max-WE's two parameters (paper Section 5.2).

Reproduces the paper's parameter-setting methodology:

1. sweep the spare-capacity percentage under UAA (Figure 6) -- more
   spares always help, but user capacity shrinks; the paper picks 10%;
2. sweep the SWR share of the spare space under BPA for each
   wear-leveling scheme (Figure 7) -- more SWRs cost a little lifetime
   but slash the mapping table; the paper picks 90%;
3. show what 90% SWRs buys: the Section 5.3.2 mapping-overhead report.
"""

from repro.core.overhead import mapping_overhead_report, paper_overhead_geometry
from repro.sim.config import ExperimentConfig
from repro.sim.experiments import spare_fraction_sweep, swr_fraction_sweep
from repro.util.tables import render_table


def main() -> None:
    config = ExperimentConfig()

    print("Step 1 -- Figure 6: spare capacity under UAA")
    rows = [
        [f"{fraction:.0%}", result.normalized_lifetime]
        for fraction, result in spare_fraction_sweep(config)
    ]
    print(render_table(["spare capacity", "normalized lifetime"], rows))
    print("-> diminishing returns past ~10-20%; the paper standardizes on 10%.\n")

    print("Step 2 -- Figure 7: SWR share under BPA, per wear-leveling scheme")
    sweeps = swr_fraction_sweep(config)
    fractions = [fraction for fraction, _ in next(iter(sweeps.values()))]
    headers = ["wear-leveler"] + [f"{fraction:.0%}" for fraction in fractions]
    rows = [
        [name] + [result.normalized_lifetime for _, result in series]
        for name, series in sweeps.items()
    ]
    print(render_table(headers, rows))
    print(
        "-> 90% SWRs costs only ~1% lifetime versus 0% for the endurance-aware\n"
        "   schemes, so the paper trades it for mapping-table savings.\n"
    )

    print("Step 3 -- Section 5.3.2: what 90% SWRs buys in SRAM")
    report = mapping_overhead_report(paper_overhead_geometry(), 0.1, 0.9)
    print(f"  Max-WE hybrid mapping: {report.hybrid_mib:.2f} MB")
    print(f"  all-line-level:        {report.line_level_mib:.2f} MB")
    print(f"  reduction:             {report.reduction:.1%} (paper: 85.0%)")


if __name__ == "__main__":
    main()
