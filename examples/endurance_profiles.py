#!/usr/bin/env python3
"""Endurance profiles: how the variation model shapes the attack surface.

Builds the library's four endurance families -- the paper's linear
approximation, the Zhang-Li power-law model (Eq. 1-2), lognormal, and
Weibull -- and compares, per family:

* the variation degree q = EH/EL and coefficient of variation;
* the analytic UAA exposure (Eq. 5 uses only q; the simulated value uses
  the whole shape);
* Max-WE's protected lifetime at the paper's 10%-spare point.

The takeaway: the *ordering* and the roughly-10x protection factor are
distribution-independent -- the paper's conclusions do not hinge on its
endurance model -- while the absolute percentages track each family's
weak-tail mass.
"""

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance import (
    linear_endurance_map,
    lognormal_endurance_map,
    weibull_endurance_map,
    zhang_li_endurance_map,
)
from repro.endurance.linear import LinearEnduranceModel
from repro.endurance.metrics import coefficient_of_variation
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.util.tables import render_table

REGIONS = 1024
LINES = REGIONS * 4
SEED = 7


def build_maps():
    return {
        "linear (q=50)": linear_endurance_map(
            LINES, REGIONS, LinearEnduranceModel.from_q(50.0, e_low=1e4), rng=SEED
        ),
        "zhang-li (Eq.1-2)": zhang_li_endurance_map(
            LINES, REGIONS, deterministic=True, rng=SEED
        ),
        "lognormal (s=0.8)": lognormal_endurance_map(LINES, REGIONS, rng=SEED),
        "weibull (k=2)": weibull_endurance_map(LINES, REGIONS, shape=2.0, rng=SEED),
    }


def main() -> None:
    rows = []
    for name, emap in build_maps().items():
        unprotected = simulate_lifetime(
            emap, UniformAddressAttack(), NoSparing(), rng=SEED
        ).normalized_lifetime
        protected = simulate_lifetime(
            emap, UniformAddressAttack(), MaxWE(0.1, 0.9), rng=SEED
        ).normalized_lifetime
        rows.append(
            [
                name,
                emap.q_ratio,
                coefficient_of_variation(emap),
                unprotected,
                protected,
                protected / unprotected,
            ]
        )

    print(
        render_table(
            ["family", "q=EH/EL", "CoV", "UAA (none)", "UAA (Max-WE)", "gain"],
            rows,
            title=f"Endurance families over {REGIONS} regions x 4 lines:",
        )
    )
    print(
        "\nEvery family shows the same picture: uniform writes strand >94% of\n"
        "the endurance in strong lines, and Max-WE claws a large factor back\n"
        "by sacrificing the weakest regions first. The factor (here 3.5x to\n"
        "10x) tracks the weak tail's mass: the heavier the tail (Zhang-Li,\n"
        "lognormal), the more of it even 10% of spares cannot absorb."
    )


if __name__ == "__main__":
    main()
