#!/usr/bin/env python3
"""Design solver: answering a deployment's questions with the closed forms.

A memory-system architect provisioning a Max-WE device asks concrete
questions the paper's figures only answer pointwise.  The analysis
module's solvers answer them directly:

1. "My process gives q = 50 -- how many spares do I need to guarantee
   30% / 50% / 70% of the ideal lifetime under worst-case (UAA) traffic?"
2. "Below what variation is sparing not even worth it?"
3. "Where does Max-WE's edge over plain capacity slack (PCD) peak?"
4. "What does that mean in wall-clock time on my part?"

Every answer is cross-checked against a fresh simulation.
"""

from repro.analysis.crossovers import (
    break_even_q,
    maxwe_advantage_peak,
    spare_fraction_for_target,
)
from repro.analysis.walltime import (
    WriteBandwidth,
    device_lifetime_seconds,
    format_duration,
)
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.device.geometry import DeviceGeometry
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime

Q = 50.0


def main() -> None:
    print(f"Process variation: q = EH/EL = {Q:g}\n")

    print("1. Spare budget for a lifetime guarantee (Eq. 6 inverted):")
    config = ExperimentConfig()
    for target in (0.30, 0.50, 0.70):
        p = spare_fraction_for_target(target, Q)
        measured = simulate_lifetime(
            config.make_emap(), UniformAddressAttack(), MaxWE(p, 0.9), rng=config.seed
        ).normalized_lifetime
        print(
            f"   target {target:.0%}: p = {p:6.2%}   "
            f"(simulation at that p: {measured:.1%})"
        )

    print("\n2. When is sparing worth it at all?")
    for p in (0.05, 0.1, 0.3):
        print(f"   p = {p:.0%}: pays off for q > {break_even_q(p):.2f}")

    p_peak, margin = maxwe_advantage_peak(Q)
    print(
        f"\n3. Max-WE's edge over PCD/PS peaks at p = {p_peak:.1%} "
        f"(+{margin:.1%} of ideal lifetime); the paper's 10% sits in this band."
    )

    print("\n4. Wall-clock at a saturated DDR4 channel (1 GB bank, 1e8 writes/line):")
    geometry = DeviceGeometry.paper_bank()
    bandwidth = WriteBandwidth.ddr4_channel()
    for label, lifetime in (("unprotected", 0.0392), ("Max-WE, 10% spares", 0.381)):
        seconds = device_lifetime_seconds(geometry, lifetime, 1e8, bandwidth)
        print(f"   {label:20s} {format_duration(seconds)} of sustained attack")


if __name__ == "__main__":
    main()
