#!/usr/bin/env python
"""Service smoke: submit over HTTP, kill -9 mid-run, restart, resume.

The acceptance bar for the job API's durability story, runnable locally
and in CI (the ``service-smoke`` job):

1. start ``python -m repro.service`` against a scratch state dir;
2. submit a sweep over HTTP and stream NDJSON events until at least
   two per-spec results have arrived (the job is genuinely mid-run);
3. ``kill -9`` the service process;
4. restart it on the same state dir, wait for the job to finish;
5. assert the served body is byte-identical to a direct
   :func:`run_batch` of the same specs, that the restart actually
   *resumed* (``service.resumed`` >= 1 and ``runner.checkpoint_hits``
   >= 1 in the manifest -- the killed run's ledger was honored), and
   that a cache-warm resubmission from another tenant completes as a
   dedup hit without dispatching the runner.

Exits non-zero on any violation.  Usage::

    python scripts/service_smoke.py [--port 8437] [--state-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SPECS = [
    {"label": f"s{i}", "attack": "bpa", "sparing": "max-we", "p": 0.02 + i * 0.005}
    for i in range(12)
]
CONFIG = {"regions": 4096, "lines_per_region": 16}


def start_server(port: int, state_dir: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", str(port), "--state-dir", state_dir, "--dispatchers", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    return process


def wait_healthy(client, process: subprocess.Popen, deadline: float = 30.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if process.poll() is not None:
            output = process.stdout.read().decode() if process.stdout else ""
            raise SystemExit(f"service exited {process.returncode}:\n{output}")
        if client.healthz():
            return
        time.sleep(0.2)
    raise SystemExit("service never became healthy")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8437)
    parser.add_argument(
        "--state-dir", default=None, help="state dir (default: fresh temp dir)"
    )
    args = parser.parse_args()

    from repro.service.client import ServiceClient
    from repro.sim.batch import run_batch
    from repro.sim.config import ExperimentConfig

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-service-smoke-")
    client = ServiceClient(port=args.port, timeout=120.0)

    print(f"[smoke] starting service (state: {state_dir})")
    server = start_server(args.port, state_dir)
    try:
        wait_healthy(client, server)
        document = client.submit(SPECS, CONFIG, tenant="smoke")
        job_id = document["job_id"]
        print(f"[smoke] submitted {job_id}")

        streamed = 0
        for event in client.stream_events(job_id):
            if event["event"] == "result":
                streamed += 1
                if streamed >= 2:
                    break
        print(f"[smoke] streamed {streamed} results; killing -9 mid-run")
        os.kill(server.pid, signal.SIGKILL)
        server.wait()

        print("[smoke] restarting on the same state dir")
        server = start_server(args.port, state_dir)
        wait_healthy(client, server)
        final = client.wait(job_id)
        if final["status"] != "done":
            raise SystemExit(f"resumed job ended {final['status']}: {final['error']}")
        body = client.results(job_id)

        direct = run_batch(SPECS, ExperimentConfig(**CONFIG)).to_json()
        if body != direct:
            raise SystemExit("resumed body is NOT byte-identical to run_batch")
        print("[smoke] resumed body byte-identical to direct run_batch")

        manifest = client.metrics()
        counters = manifest["counters"]
        if counters.get("service.resumed", 0) < 1:
            raise SystemExit(f"no resumed jobs in manifest: {counters}")
        if counters.get("runner.checkpoint_hits", 0) < 1:
            raise SystemExit(
                f"restart recomputed everything (no checkpoint hits): {counters}"
            )
        print(
            f"[smoke] resume honored the ledger "
            f"(checkpoint_hits={counters['runner.checkpoint_hits']})"
        )

        # Warm resubmission from another tenant: O(1) dedup, no dispatch.
        simulated_before = counters.get("runner.simulated", 0)
        duplicate = client.submit(SPECS, CONFIG, tenant="other-tenant")
        final = client.wait(duplicate["job_id"])
        if not final.get("dedup_hit"):
            raise SystemExit(f"warm resubmission was not a dedup hit: {final}")
        if client.results(duplicate["job_id"]) != direct:
            raise SystemExit("dedup body differs from original")
        counters = client.metrics()["counters"]
        if counters.get("runner.simulated", 0) != simulated_before:
            raise SystemExit("warm resubmission dispatched the runner")
        if counters.get("service.dedup_hits", 0) < 1:
            raise SystemExit(f"service.dedup_hits missing from manifest: {counters}")
        print("[smoke] warm resubmission deduped without touching the runner")
        print("[smoke] OK")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()


if __name__ == "__main__":
    sys.exit(main())
